#include "catc/compile.hh"

#include <array>
#include <unordered_map>

#include "base/logging.hh"

namespace rex::catc {

namespace {

/**
 * Emits ops with value-numbering: every op is pure, so structurally
 * identical ops collapse to one register. This is what makes the
 * lowered clause structure "skeleton-shaped" — shared subexpressions
 * (po, the barrier classes, int) appear once no matter how many clauses
 * mention them.
 */
class Builder
{
  public:
    std::uint32_t
    emit(OpCode code, std::uint32_t a = 0, std::uint32_t b = 0,
         std::uint32_t c = 0)
    {
        const Key key{static_cast<std::uint32_t>(code), a, b, c};
        auto it = _memo.find(key);
        if (it != _memo.end())
            return it->second;
        const auto reg =
            static_cast<std::uint32_t>(_program.ops.size());
        _program.ops.push_back(Op{code, a, b, c});
        _memo.emplace(key, reg);
        return reg;
    }

    std::uint32_t
    input(Input in)
    {
        return emit(OpCode::LoadInput, static_cast<std::uint32_t>(in));
    }

    std::uint32_t
    unionAll(std::initializer_list<std::uint32_t> regs)
    {
        rexAssert(regs.size() > 0, "catc: empty union");
        auto it = regs.begin();
        std::uint32_t acc = *it++;
        for (; it != regs.end(); ++it)
            acc = emit(OpCode::UnionRel, acc, *it);
        return acc;
    }

    void
    check(Check::Kind kind, std::uint32_t reg, std::string name)
    {
        _program.checks.push_back(Check{kind, reg, std::move(name)});
    }

    Program
    finish()
    {
        const std::string error = verify(_program);
        rexAssert(error.empty(), "catc: compiler emitted an invalid "
                                 "program: " + error);
        return std::move(_program);
    }

  private:
    using Key = std::array<std::uint32_t, 4>;
    struct KeyHash {
        std::size_t
        operator()(const Key &k) const
        {
            std::size_t h = 1469598103934665603ull;
            for (std::uint32_t v : k) {
                h ^= v;
                h *= 1099511628211ull;
            }
            return h;
        }
    };

    Program _program;
    std::unordered_map<Key, std::uint32_t, KeyHash> _memo;
};

} // namespace

Program
compileNative(const ModelParams &params, bool include_internal)
{
    Builder b;

    // Event-kind sets and the upwards-closed barrier classes, exactly
    // as computeSkeleton's KindSets builds them.
    const std::uint32_t reads = b.input(Input::R);
    const std::uint32_t writes = b.input(Input::W);
    const std::uint32_t mem = b.emit(OpCode::UnionSet, reads, writes);
    const std::uint32_t dmbSy = b.input(Input::DmbSy);
    const std::uint32_t dsbSy = b.input(Input::DsbSy);
    const std::uint32_t dsbLd = b.input(Input::DsbLd);
    const std::uint32_t dsbSt = b.input(Input::DsbSt);
    std::uint32_t dmbLdClass =
        b.emit(OpCode::UnionSet, b.input(Input::DmbLd), dmbSy);
    dmbLdClass = b.emit(OpCode::UnionSet, dmbLdClass, dsbLd);
    dmbLdClass = b.emit(OpCode::UnionSet, dmbLdClass, dsbSy);
    std::uint32_t dmbStClass =
        b.emit(OpCode::UnionSet, b.input(Input::DmbSt), dmbSy);
    dmbStClass = b.emit(OpCode::UnionSet, dmbStClass, dsbSt);
    dmbStClass = b.emit(OpCode::UnionSet, dmbStClass, dsbSy);
    std::uint32_t dsbClass = b.emit(OpCode::UnionSet, dsbSy, dsbLd);
    dsbClass = b.emit(OpCode::UnionSet, dsbClass, dsbSt);
    const std::uint32_t isb = b.input(Input::Isb);
    const std::uint32_t acqA = b.input(Input::A);
    const std::uint32_t rel = b.input(Input::L);
    const std::uint32_t acq =
        b.emit(OpCode::UnionSet, acqA, b.input(Input::Q));
    const std::uint32_t msr = b.input(Input::Msr);
    const std::uint32_t takeIrq = b.input(Input::TakeInterrupt);

    const std::uint32_t po = b.input(Input::Po);
    const std::uint32_t addr = b.input(Input::Addr);
    const std::uint32_t rmw = b.input(Input::Rmw);
    const std::uint32_t internal = b.input(Input::Int);

    // (* might-be speculatively executed *)
    std::uint32_t spec = b.emit(OpCode::UnionRel, b.input(Input::Ctrl),
                                b.emit(OpCode::Seq, addr, po));
    if (params.seaR) {
        spec = b.emit(OpCode::UnionRel, spec,
                      b.emit(OpCode::RestrictDomain, po, reads));
    }
    if (params.seaW) {
        spec = b.emit(OpCode::UnionRel, spec,
                      b.emit(OpCode::RestrictDomain, po, writes));
    }

    // (* context-sync-events *)
    std::uint32_t cse = isb;
    if (params.entryIsCse())
        cse = b.emit(OpCode::UnionSet, cse, b.input(Input::Te));
    if (params.returnIsCse())
        cse = b.emit(OpCode::UnionSet, cse, b.input(Input::Eret));
    if (params.entryIsCse())
        cse = b.emit(OpCode::UnionSet, cse, takeIrq);

    // (* dependency-ordered-before *), minus the rfi tail.
    const std::uint32_t addrData =
        b.emit(OpCode::UnionRel, addr, b.input(Input::Data));
    const std::uint32_t dobStatic = b.unionAll(
        {addrData, b.emit(OpCode::RestrictRange, spec, writes),
         b.emit(OpCode::RestrictRange, spec, isb)});

    // (* barrier-ordered-before *)
    const std::uint32_t bob = b.unionAll({
        b.emit(OpCode::Restricted, po, reads, dmbLdClass),
        b.emit(OpCode::Restricted, po, writes, dmbStClass),
        b.emit(OpCode::Restricted, po, dmbStClass, writes),
        b.emit(OpCode::Restricted, po, dmbLdClass, mem),
        b.emit(OpCode::Restricted, po, rel, acqA),
        b.emit(OpCode::Restricted, po, acq, mem),
        b.emit(OpCode::Restricted, po, mem, rel),
        b.emit(OpCode::RestrictDomain, po, dsbClass),
    });

    // (* contextually-ordered-before *)
    const std::uint32_t ctxob = b.unionAll({
        b.emit(OpCode::RestrictRange, spec,
               b.emit(OpCode::UnionSet, msr, cse)),
        b.emit(OpCode::Restricted, po, msr, cse),
        b.emit(OpCode::RestrictDomain, po, cse),
    });

    // (* async-ordered-before *)
    const std::uint32_t asyncob = b.unionAll({
        b.emit(OpCode::RestrictRange, spec, takeIrq),
        b.emit(OpCode::RestrictDomain, po, takeIrq),
    });

    std::uint32_t staticOb =
        b.unionAll({dobStatic, rmw, bob, ctxob, asyncob});
    // FEAT_ETS2: a barrier before translation faults (§3.3).
    if (params.featEts2) {
        staticOb = b.emit(
            OpCode::UnionRel, staticOb,
            b.emit(OpCode::RestrictRange, po, b.input(Input::Tf)));
    }
    // §7.5 GIC draft: DSBs order GIC effects with program order.
    if (params.gicExtension) {
        const std::uint32_t iio = b.input(Input::Iio);
        const std::uint32_t gen = b.emit(
            OpCode::RestrictRange,
            b.emit(OpCode::Seq, b.emit(OpCode::InverseRel, iio), po),
            dsbClass);
        const std::uint32_t del = b.emit(
            OpCode::Seq, b.emit(OpCode::RestrictDomain, po, dsbClass),
            iio);
        staticOb = b.unionAll({staticOb, gen, del});
    }

    // The witness-dependent tail: everything from here on references
    // rf/co (and the interrupt witness), so it survives constant
    // folding and runs per candidate.
    const std::uint32_t rf = b.input(Input::Rf);
    const std::uint32_t co = b.input(Input::Co);
    const std::uint32_t fr = b.emit(
        OpCode::Seq, b.emit(OpCode::InverseRel, rf), co);
    const std::uint32_t rfi = b.emit(OpCode::InterRel, rf, internal);

    if (include_internal) {
        const std::uint32_t scLoc = b.unionAll(
            {b.input(Input::PoLoc), fr, co, rf});
        b.check(Check::Kind::Acyclic, scLoc, "internal");
    }

    std::uint32_t external = b.unionAll({
        staticOb, fr, b.emit(OpCode::DiffRel, rf, internal),  // rfe
        co, b.emit(OpCode::Seq, addrData, rfi),
        b.emit(OpCode::Restricted, rfi, b.emit(OpCode::RangeOf, rmw),
               acq),
    });
    if (params.gicExtension) {
        external = b.emit(OpCode::UnionRel, external,
                          b.input(Input::Interrupt));
    }
    b.check(Check::Kind::Acyclic, external, "external");

    // Atomic: no intervening external write between an exclusive pair.
    const std::uint32_t atomic = b.emit(
        OpCode::InterRel, rmw,
        b.emit(OpCode::Seq, b.emit(OpCode::DiffRel, fr, internal),
               b.emit(OpCode::DiffRel, co, internal)));
    b.check(Check::Kind::Empty, atomic, "atomic");

    return b.finish();
}

namespace {

/** A value during cat lowering: a register, or the polymorphic zero
 *  (materialized on demand with the interpreter's coercion rules). */
struct Lowered {
    bool zero = true;
    bool isSet = false;
    std::uint32_t reg = 0;

    static Lowered
    rel(std::uint32_t reg)
    {
        return Lowered{false, false, reg};
    }

    static Lowered
    set(std::uint32_t reg)
    {
        return Lowered{false, true, reg};
    }
};

/** Recursive-descent lowering of cat expressions and statements. */
class CatLowerer
{
  public:
    CatLowerer(const std::map<std::string, bool> &flags) : _flags(flags)
    {}

    void
    lowerStatements(const std::vector<cat::Statement> &statements)
    {
        using cat::Statement;
        for (const Statement &stmt : statements) {
            switch (stmt.kind) {
              case Statement::Kind::Show:
                break;
              case Statement::Kind::Flag:
                fatal("catc: 'flag' diagnostics are not compilable "
                      "(line " + std::to_string(stmt.line) + ")");
              case Statement::Kind::Include:
                fatal("catc: unresolved include \"" + stmt.includePath +
                      "\" — flatten includes before compiling");
              case Statement::Kind::Let:
                if (stmt.recursive) {
                    fatal("catc: 'let rec' is not compilable (line " +
                          std::to_string(stmt.line) + ")");
                }
                for (const auto &[name, expr] : stmt.bindings)
                    _env[name] = lower(*expr);
                break;
              case Statement::Kind::Check: {
                std::string name = stmt.checkName.empty()
                    ? ("check@" + std::to_string(stmt.line))
                    : stmt.checkName;
                Lowered value = lower(*stmt.checkExpr);
                Check::Kind kind = Check::Kind::Acyclic;
                std::uint32_t reg = 0;
                switch (stmt.check) {
                  case Statement::CheckKind::Acyclic:
                    kind = Check::Kind::Acyclic;
                    reg = asRel(value);
                    break;
                  case Statement::CheckKind::Irreflexive:
                    kind = Check::Kind::Irreflexive;
                    reg = asRel(value);
                    break;
                  case Statement::CheckKind::Empty:
                    kind = Check::Kind::Empty;
                    // The interpreter coerces zero to a relation here.
                    reg = value.isSet && !value.zero ? value.reg
                                                     : asRel(value);
                    break;
                }
                _builder.check(kind, reg, std::move(name));
                break;
              }
            }
        }
    }

    Program
    finish()
    {
        return _builder.finish();
    }

  private:
    bool
    evalCond(const cat::FlagCond &cond) const
    {
        using cat::FlagCond;
        switch (cond.kind) {
          case FlagCond::Kind::Flag: {
            auto it = _flags.find(cond.flag);
            return it != _flags.end() && it->second;
          }
          case FlagCond::Kind::Not:
            return !evalCond(*cond.lhs);
          case FlagCond::Kind::And:
            return evalCond(*cond.lhs) && evalCond(*cond.rhs);
          case FlagCond::Kind::Or:
            return evalCond(*cond.lhs) || evalCond(*cond.rhs);
        }
        return false;
    }

    std::uint32_t
    asRel(const Lowered &value)
    {
        if (value.zero)
            return _builder.emit(OpCode::ZeroRel);
        if (value.isSet)
            fatal("catc type error: expected a relation, got a set");
        return value.reg;
    }

    std::uint32_t
    asSet(const Lowered &value)
    {
        if (value.zero)
            return _builder.emit(OpCode::ZeroSet);
        if (!value.isSet)
            fatal("catc type error: expected a set, got a relation");
        return value.reg;
    }

    /** The built-in (or derived built-in) named @p name, or nullopt. */
    std::optional<Lowered>
    builtin(const std::string &name)
    {
        const Input input = inputByName(name);
        if (input != Input::Count_) {
            const std::uint32_t reg = _builder.input(input);
            return inputIsSet(input) ? Lowered::set(reg)
                                     : Lowered::rel(reg);
        }
        // Derived built-ins, lowered like the evaluator's accessors.
        auto inter = [&](Input a, Input b) {
            return Lowered::rel(_builder.emit(
                OpCode::InterRel, _builder.input(a), _builder.input(b)));
        };
        auto diff = [&](Input a, Input b) {
            return Lowered::rel(_builder.emit(
                OpCode::DiffRel, _builder.input(a), _builder.input(b)));
        };
        auto fr = [&] {
            return _builder.emit(
                OpCode::Seq,
                _builder.emit(OpCode::InverseRel,
                              _builder.input(Input::Rf)),
                _builder.input(Input::Co));
        };
        if (name == "rfi")
            return inter(Input::Rf, Input::Int);
        if (name == "rfe")
            return diff(Input::Rf, Input::Int);
        if (name == "coi")
            return inter(Input::Co, Input::Int);
        if (name == "coe")
            return diff(Input::Co, Input::Int);
        if (name == "fr")
            return Lowered::rel(fr());
        if (name == "fri") {
            return Lowered::rel(_builder.emit(
                OpCode::InterRel, fr(), _builder.input(Input::Int)));
        }
        if (name == "fre") {
            return Lowered::rel(_builder.emit(
                OpCode::DiffRel, fr(), _builder.input(Input::Int)));
        }
        if (name == "ext") {
            const std::uint32_t universe =
                _builder.input(Input::Universe);
            const std::uint32_t all =
                _builder.emit(OpCode::Cartesian, universe, universe);
            return Lowered::rel(_builder.emit(
                OpCode::DiffRel,
                _builder.emit(OpCode::DiffRel, all,
                              _builder.input(Input::Int)),
                _builder.input(Input::Id)));
        }
        return std::nullopt;
    }

    Lowered
    lower(const cat::Expr &expr)
    {
        using cat::Expr;
        switch (expr.kind) {
          case Expr::Kind::Zero:
            return Lowered{};

          case Expr::Kind::Name: {
            auto it = _env.find(expr.name);
            if (it != _env.end())
                return it->second;
            if (auto value = builtin(expr.name))
                return *value;
            fatal("catc: unbound name '" + expr.name + "' at line " +
                  std::to_string(expr.line));
          }

          case Expr::Kind::Union:
          case Expr::Kind::Inter:
          case Expr::Kind::Diff: {
            Lowered lhs = lower(*expr.lhs);
            Lowered rhs = lower(*expr.rhs);
            // The evaluator's polymorphism rules: sets combine with
            // sets, relations with relations, zero adopts the other
            // side's kind (two zeros coerce to relations).
            const bool anySet = (!lhs.zero && lhs.isSet) ||
                                (!rhs.zero && rhs.isSet);
            const bool anyRel = (!lhs.zero && !lhs.isSet) ||
                                (!rhs.zero && !rhs.isSet);
            if (anySet && anyRel) {
                fatal("catc type error: mixing a set and a relation at "
                      "line " + std::to_string(expr.line));
            }
            OpCode code;
            if (anySet) {
                code = expr.kind == Expr::Kind::Union
                           ? OpCode::UnionSet
                           : expr.kind == Expr::Kind::Inter
                                 ? OpCode::InterSet : OpCode::DiffSet;
                return Lowered::set(_builder.emit(code, asSet(lhs),
                                                  asSet(rhs)));
            }
            code = expr.kind == Expr::Kind::Union
                       ? OpCode::UnionRel
                       : expr.kind == Expr::Kind::Inter
                             ? OpCode::InterRel : OpCode::DiffRel;
            return Lowered::rel(_builder.emit(code, asRel(lhs),
                                              asRel(rhs)));
          }

          case Expr::Kind::Seq: {
            Lowered lhs = lower(*expr.lhs);
            Lowered rhs = lower(*expr.rhs);
            return Lowered::rel(_builder.emit(OpCode::Seq, asRel(lhs),
                                              asRel(rhs)));
          }

          case Expr::Kind::Closure:
            return Lowered::rel(_builder.emit(OpCode::Closure,
                                              asRel(lower(*expr.lhs))));
          case Expr::Kind::RtClosure:
            return Lowered::rel(_builder.emit(OpCode::RtClosure,
                                              asRel(lower(*expr.lhs))));
          case Expr::Kind::Optional:
            return Lowered::rel(_builder.emit(OpCode::OptionalRel,
                                              asRel(lower(*expr.lhs))));
          case Expr::Kind::Inverse:
            return Lowered::rel(_builder.emit(OpCode::InverseRel,
                                              asRel(lower(*expr.lhs))));

          case Expr::Kind::Complement: {
            Lowered value = lower(*expr.lhs);
            if (!value.zero && !value.isSet) {
                fatal("catc: '~' on a relation is unsupported (line " +
                      std::to_string(expr.line) + ")");
            }
            return Lowered::set(_builder.emit(OpCode::ComplementSet,
                                              asSet(value)));
          }

          case Expr::Kind::Bracket:
            return Lowered::rel(_builder.emit(OpCode::IdentityOn,
                                              asSet(lower(*expr.lhs))));

          case Expr::Kind::If:
            return evalCond(*expr.cond) ? lower(*expr.lhs)
                                        : lower(*expr.rhs);

          case Expr::Kind::App: {
            Lowered arg = lower(*expr.lhs);
            if (expr.name == "range") {
                return Lowered::set(_builder.emit(OpCode::RangeOf,
                                                  asRel(arg)));
            }
            if (expr.name == "domain") {
                return Lowered::set(_builder.emit(OpCode::DomainOf,
                                                  asRel(arg)));
            }
            fatal("catc: unknown function '" + expr.name +
                  "' at line " + std::to_string(expr.line));
          }
        }
        panic("catc: unhandled cat expression kind");
    }

    const std::map<std::string, bool> &_flags;
    Builder _builder;
    std::map<std::string, Lowered> _env;
};

} // namespace

CatCompileResult
compileCat(const cat::CatFile &file,
           const std::map<std::string, bool> &flags)
{
    CatCompileResult result;
    try {
        CatLowerer lowerer(flags);
        lowerer.lowerStatements(file.statements);
        result.program = lowerer.finish();
    } catch (const FatalError &err) {
        result.error = err.what();
    }
    return result;
}

} // namespace rex::catc
