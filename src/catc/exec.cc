#include "catc/exec.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"
#include "engine/governor.hh"

// Computed-goto dispatch is a GNU extension; elsewhere (and under
// REX_CATC_SWITCH=1 at runtime) the switch loop below runs instead.
#if defined(__GNUC__) || defined(__clang__)
#define REX_CATC_COMPUTED_GOTO 1
#else
#define REX_CATC_COMPUTED_GOTO 0
#endif

namespace rex::catc {

namespace {

/** Operand registers of @p op (LoadInput's a is an input id, not a
 *  register). */
int
operandsOf(const Op &op, std::uint32_t out[3])
{
    switch (op.code) {
      case OpCode::LoadInput:
      case OpCode::ZeroRel:
      case OpCode::ZeroSet:
        return 0;
      case OpCode::Closure:
      case OpCode::RtClosure:
      case OpCode::OptionalRel:
      case OpCode::InverseRel:
      case OpCode::IdentityOn:
      case OpCode::ComplementSet:
      case OpCode::DomainOf:
      case OpCode::RangeOf:
        out[0] = op.a;
        return 1;
      case OpCode::Restricted:
        out[0] = op.a;
        out[1] = op.b;
        out[2] = op.c;
        return 3;
      default:
        out[0] = op.a;
        out[1] = op.b;
        return 2;
    }
}

} // namespace

FoldPlan::FoldPlan(const Program &program) : _program(&program)
{
    rexAssert(program.kinds.size() == program.ops.size(),
              "catc: FoldPlan needs a verify()'d program");

    const std::size_t nOps = program.ops.size();
    _isConst.assign(nOps, 0);

    // Witness-dependence: an op depends on the witness iff it loads
    // rf/co/interrupt or any operand does. Everything else is fixed
    // within a trace combination and folds at FoldedProgram time.
    std::uint32_t operands[3];
    for (std::size_t i = 0; i < nOps; ++i) {
        const Op &op = program.ops[i];
        bool witness = false;
        if (op.code == OpCode::LoadInput) {
            witness = inputIsWitness(static_cast<Input>(op.a));
        } else {
            const int count = operandsOf(op, operands);
            for (int j = 0; j < count; ++j)
                witness = witness || !_isConst[operands[j]];
        }
        if (witness) {
            ++_liveOps;
            continue;
        }
        _isConst[i] = 1;
        _constOps.push_back(static_cast<std::uint32_t>(i));
    }

    // Checks over constant registers resolve at fold time — their ops
    // never run per candidate (the folding pass's dead-code
    // elimination). The rest get the ascending list of live ops they
    // transitively need.
    const std::size_t nChecks = program.checks.size();
    _checkConst.assign(nChecks, 0);
    _deps.resize(nChecks);
    std::vector<std::uint8_t> seen(nOps);
    std::vector<std::uint32_t> stack;
    for (std::size_t i = 0; i < nChecks; ++i) {
        const Check &check = program.checks[i];
        if (_isConst[check.reg]) {
            _checkConst[i] = 1;
            ++_constChecks;
            continue;
        }
        std::fill(seen.begin(), seen.end(), 0);
        stack.assign(1, check.reg);
        seen[check.reg] = 1;
        while (!stack.empty()) {
            const std::uint32_t reg = stack.back();
            stack.pop_back();
            _deps[i].push_back(reg);
            const int count = operandsOf(program.ops[reg], operands);
            for (int j = 0; j < count; ++j) {
                const std::uint32_t dep = operands[j];
                if (!_isConst[dep] && !seen[dep]) {
                    seen[dep] = 1;
                    stack.push_back(dep);
                }
            }
        }
        std::sort(_deps[i].begin(), _deps[i].end());
    }
}

FoldedProgram::FoldedProgram(const FoldPlan &plan,
                             const CandidateExecution &cand)
    : _plan(&plan)
{
    fold(cand);
}

FoldedProgram::FoldedProgram(const Program &program,
                             const CandidateExecution &cand)
    : _owned(std::make_shared<FoldPlan>(program)), _plan(_owned.get())
{
    fold(cand);
}

void
FoldedProgram::fold(const CandidateExecution &cand)
{
    const char *forceSwitch = std::getenv("REX_CATC_SWITCH");
    _forceSwitch = forceSwitch && forceSwitch[0] == '1' &&
                   forceSwitch[1] == '\0';

    _n = cand.size();
    const std::size_t nOps = _plan->program().ops.size();
    _regs.resize(nOps);
    _doneEpoch.assign(nOps, 0);

    // Execute the whole constant prefix in one dispatch run (operands
    // always precede their op, so ascending order is evaluation order).
    _pending = _plan->_constOps;
    executePending(cand);
    captureStatic(cand);

    const std::size_t nChecks = _plan->program().checks.size();
    _constOutcome.resize(nChecks);
    _failures.assign(nChecks, 0);
    _order.resize(nChecks);
    for (std::size_t i = 0; i < nChecks; ++i) {
        _order[i] = static_cast<std::uint32_t>(i);
        if (_plan->_checkConst[i])
            _constOutcome[i] = evalOutcome(i);
    }
}

bool
FoldedProgram::matchesStatic(const CandidateExecution &cand) const
{
    if (cand.size() != _sig.events.size())
        return false;
    for (std::size_t i = 0; i < _sig.events.size(); ++i) {
        const Event &e = cand.events[i];
        const EventSig &sig = _sig.events[i];
        if (e.kind != sig.kind || e.tid != sig.tid || e.loc != sig.loc ||
            !(e.flags == sig.flags) || e.initial != sig.initial ||
            e.barrier != sig.barrier ||
            e.exceptionClass != sig.exceptionClass)
            return false;
    }
    return cand.po == _sig.po && cand.iio == _sig.iio &&
           cand.addr == _sig.addr && cand.data == _sig.data &&
           cand.ctrl == _sig.ctrl && cand.rmw == _sig.rmw;
}

void
FoldedProgram::captureStatic(const CandidateExecution &cand)
{
    _sig.events.resize(cand.size());
    for (std::size_t i = 0; i < _sig.events.size(); ++i) {
        const Event &e = cand.events[i];
        _sig.events[i] = EventSig{e.kind, e.tid, e.loc, e.flags,
                                  e.initial, e.barrier, e.exceptionClass};
    }
    _sig.po = cand.po;
    _sig.iio = cand.iio;
    _sig.addr = cand.addr;
    _sig.data = cand.data;
    _sig.ctrl = cand.ctrl;
    _sig.rmw = cand.rmw;
}

void
FoldedProgram::refold(const CandidateExecution &cand)
{
    // Only register *values* depend on the trace combination, and only
    // through the static signature: a matching signature means every
    // folded register (and resolved constant check) is already right.
    if (matchesStatic(cand))
        return;
    _n = cand.size();
    _pending = _plan->_constOps;
    executePending(cand);
    for (std::size_t i = 0; i < _plan->program().checks.size(); ++i) {
        if (_constOutcome[i].known)
            _constOutcome[i] = evalOutcome(i);
    }
    captureStatic(cand);
}

FoldedProgram::ConstOutcome
FoldedProgram::evalOutcome(std::size_t index) const
{
    const Check &check = _plan->program().checks[index];
    const RegValue &value = _regs[check.reg];
    ConstOutcome out;
    out.known = true;
    switch (check.kind) {
      case Check::Kind::Acyclic:
        out.cycle = value.rel.findCycle();
        out.passed = !out.cycle.has_value();
        break;
      case Check::Kind::Irreflexive:
        out.passed = value.rel.irreflexive();
        if (!out.passed) {
            // Report some reflexive event as a 1-cycle, like the
            // interpreter does.
            for (EventId e = 0; e < value.rel.size(); ++e) {
                if (value.rel.contains(e, e)) {
                    out.cycle = std::vector<EventId>{e};
                    break;
                }
            }
        }
        break;
      case Check::Kind::Empty:
        out.passed = _plan->program().kinds[check.reg] == RegKind::Set
                         ? value.set.empty() : value.rel.empty();
        break;
    }
    return out;
}

bool
FoldedProgram::gatherPending(const std::vector<std::uint32_t> &deps)
{
    _pending.clear();
    for (std::uint32_t reg : deps) {
        if (_doneEpoch[reg] != _epoch) {
            _doneEpoch[reg] = _epoch;
            _pending.push_back(reg);
        }
    }
    return !_pending.empty();
}

bool
FoldedProgram::checkPassesFast(std::size_t index)
{
    const Check &check = _plan->program().checks[index];
    const RegValue &value = _regs[check.reg];
    switch (check.kind) {
      case Check::Kind::Acyclic:
        // No closure, no cycle extraction: a word-level DFS answers
        // the verdict an order of magnitude cheaper.
        return !value.rel.hasCycle();
      case Check::Kind::Irreflexive:
        return value.rel.irreflexive();
      case Check::Kind::Empty:
        return _plan->program().kinds[check.reg] == RegKind::Set
                   ? value.set.empty() : value.rel.empty();
    }
    return true;
}

ModelResult
FoldedProgram::runFast(const CandidateExecution &cand,
                       const engine::CancelToken *cancel)
{
    ModelResult result;
    ++_epoch;
    // Most-selective check first: descending measured failure count,
    // stable on ties so equally-selective checks keep program order.
    // Counts only change on failure, so the common all-pass candidate
    // skips the sort entirely.
    if (_orderDirty) {
        std::stable_sort(_order.begin(), _order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return _failures[a] > _failures[b];
                         });
        _orderDirty = false;
    }
    for (std::uint32_t index : _order) {
        const ConstOutcome &folded = _constOutcome[index];
        if (folded.known) {
            if (!folded.passed) {
                ++_failures[index];
                _orderDirty = true;
                result.consistent = false;
                return result;
            }
            continue;
        }
        if (gatherPending(_plan->_deps[index])) {
            if (cancel && cancel->cancelled()) {
                result.aborted = true;
                return result;
            }
            executePending(cand);
        }
        if (!checkPassesFast(index)) {
            ++_failures[index];
            _orderDirty = true;
            result.consistent = false;
            return result;
        }
    }
    return result;
}

ModelResult
FoldedProgram::runAttributed(const CandidateExecution &cand,
                             const engine::CancelToken *cancel)
{
    ModelResult result;
    ++_epoch;
    for (std::size_t index = 0; index < _plan->program().checks.size();
         ++index) {
        const Check &check = _plan->program().checks[index];
        ConstOutcome outcome = _constOutcome[index];
        if (!outcome.known) {
            if (gatherPending(_plan->_deps[index])) {
                if (cancel && cancel->cancelled()) {
                    result.aborted = true;
                    return result;
                }
                executePending(cand);
            }
            outcome = evalOutcome(index);
        }
        if (!outcome.passed) {
            ++_failures[index];
            _orderDirty = true;
            result.consistent = false;
            result.failedAxiom = check.name;
            result.cycle = std::move(outcome.cycle);
            return result;
        }
    }
    return result;
}

void
FoldedProgram::executePending(const CandidateExecution &cand)
{
    const Op *const ops = _plan->program().ops.data();
    RegValue *const regs = _regs.data();
    const std::uint32_t *const list = _pending.data();
    const std::size_t count = _pending.size();
    const std::size_t n = _n;
    std::size_t i = 0;
    if (count == 0)
        return;

#if REX_CATC_COMPUTED_GOTO
    if (!_forceSwitch) {
        // One dispatch table entry per OpCode, in enum order.
        static const void *const kTable[] = {
            &&op_LoadInput,      &&op_ZeroRel,       &&op_ZeroSet,
            &&op_UnionRel,       &&op_InterRel,      &&op_DiffRel,
            &&op_UnionSet,       &&op_InterSet,      &&op_DiffSet,
            &&op_Seq,            &&op_Closure,       &&op_RtClosure,
            &&op_OptionalRel,    &&op_InverseRel,    &&op_IdentityOn,
            &&op_ComplementSet,  &&op_DomainOf,      &&op_RangeOf,
            &&op_RestrictDomain, &&op_RestrictRange, &&op_Restricted,
            &&op_Cartesian,
        };
        static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                          static_cast<std::size_t>(OpCode::Count_),
                      "dispatch table must cover every OpCode");
        const Op *op = &ops[list[0]];
        RegValue *out = &regs[list[0]];
#define CATC_NEXT()                                                     \
        do {                                                            \
            if (++i == count)                                           \
                return;                                                 \
            op = &ops[list[i]];                                         \
            out = &regs[list[i]];                                       \
            goto *kTable[static_cast<std::size_t>(op->code)];           \
        } while (0)
        goto *kTable[static_cast<std::size_t>(op->code)];
      op_LoadInput: {
        const auto input = static_cast<Input>(op->a);
        if (inputIsSet(input))
            out->set = loadInputSet(input, cand);
        else
            out->rel = loadInputRel(input, cand);
        CATC_NEXT();
      }
      op_ZeroRel:
        out->rel.reset(n);
        CATC_NEXT();
      op_ZeroSet:
        out->set = EventSet(n);
        CATC_NEXT();
      op_UnionRel:
        out->rel = regs[op->a].rel;
        out->rel |= regs[op->b].rel;
        CATC_NEXT();
      op_InterRel:
        out->rel = regs[op->a].rel;
        out->rel &= regs[op->b].rel;
        CATC_NEXT();
      op_DiffRel:
        out->rel = regs[op->a].rel;
        out->rel -= regs[op->b].rel;
        CATC_NEXT();
      op_UnionSet:
        out->set = regs[op->a].set;
        out->set |= regs[op->b].set;
        CATC_NEXT();
      op_InterSet:
        out->set = regs[op->a].set;
        out->set &= regs[op->b].set;
        CATC_NEXT();
      op_DiffSet:
        out->set = regs[op->a].set;
        out->set -= regs[op->b].set;
        CATC_NEXT();
      op_Seq:
        out->rel = regs[op->a].rel.seq(regs[op->b].rel);
        CATC_NEXT();
      op_Closure:
        out->rel = regs[op->a].rel.transitiveClosure();
        CATC_NEXT();
      op_RtClosure:
        out->rel = regs[op->a].rel.reflexiveTransitiveClosure();
        CATC_NEXT();
      op_OptionalRel:
        out->rel = regs[op->a].rel.optional();
        CATC_NEXT();
      op_InverseRel:
        out->rel = regs[op->a].rel.inverse();
        CATC_NEXT();
      op_IdentityOn:
        out->rel = Relation::identity(regs[op->a].set);
        CATC_NEXT();
      op_ComplementSet:
        out->set = regs[op->a].set.complement();
        CATC_NEXT();
      op_DomainOf:
        out->set = regs[op->a].rel.domain();
        CATC_NEXT();
      op_RangeOf:
        out->set = regs[op->a].rel.range();
        CATC_NEXT();
      op_RestrictDomain:
        out->rel = regs[op->a].rel.restrictDomain(regs[op->b].set);
        CATC_NEXT();
      op_RestrictRange:
        out->rel = regs[op->a].rel.restrictRange(regs[op->b].set);
        CATC_NEXT();
      op_Restricted:
        out->rel = regs[op->a].rel.restricted(regs[op->b].set,
                                              regs[op->c].set);
        CATC_NEXT();
      op_Cartesian:
        out->rel = Relation::cartesian(regs[op->a].set, regs[op->b].set);
        CATC_NEXT();
#undef CATC_NEXT
    }
#endif

    for (; i < count; ++i) {
        const Op &op = ops[list[i]];
        RegValue &out = regs[list[i]];
        switch (op.code) {
          case OpCode::LoadInput: {
            const auto input = static_cast<Input>(op.a);
            if (inputIsSet(input))
                out.set = loadInputSet(input, cand);
            else
                out.rel = loadInputRel(input, cand);
            break;
          }
          case OpCode::ZeroRel:
            out.rel.reset(n);
            break;
          case OpCode::ZeroSet:
            out.set = EventSet(n);
            break;
          case OpCode::UnionRel:
            out.rel = regs[op.a].rel;
            out.rel |= regs[op.b].rel;
            break;
          case OpCode::InterRel:
            out.rel = regs[op.a].rel;
            out.rel &= regs[op.b].rel;
            break;
          case OpCode::DiffRel:
            out.rel = regs[op.a].rel;
            out.rel -= regs[op.b].rel;
            break;
          case OpCode::UnionSet:
            out.set = regs[op.a].set;
            out.set |= regs[op.b].set;
            break;
          case OpCode::InterSet:
            out.set = regs[op.a].set;
            out.set &= regs[op.b].set;
            break;
          case OpCode::DiffSet:
            out.set = regs[op.a].set;
            out.set -= regs[op.b].set;
            break;
          case OpCode::Seq:
            out.rel = regs[op.a].rel.seq(regs[op.b].rel);
            break;
          case OpCode::Closure:
            out.rel = regs[op.a].rel.transitiveClosure();
            break;
          case OpCode::RtClosure:
            out.rel = regs[op.a].rel.reflexiveTransitiveClosure();
            break;
          case OpCode::OptionalRel:
            out.rel = regs[op.a].rel.optional();
            break;
          case OpCode::InverseRel:
            out.rel = regs[op.a].rel.inverse();
            break;
          case OpCode::IdentityOn:
            out.rel = Relation::identity(regs[op.a].set);
            break;
          case OpCode::ComplementSet:
            out.set = regs[op.a].set.complement();
            break;
          case OpCode::DomainOf:
            out.set = regs[op.a].rel.domain();
            break;
          case OpCode::RangeOf:
            out.set = regs[op.a].rel.range();
            break;
          case OpCode::RestrictDomain:
            out.rel = regs[op.a].rel.restrictDomain(regs[op.b].set);
            break;
          case OpCode::RestrictRange:
            out.rel = regs[op.a].rel.restrictRange(regs[op.b].set);
            break;
          case OpCode::Restricted:
            out.rel = regs[op.a].rel.restricted(regs[op.b].set,
                                                regs[op.c].set);
            break;
          case OpCode::Cartesian:
            out.rel = Relation::cartesian(regs[op.a].set,
                                          regs[op.b].set);
            break;
          case OpCode::Count_:
            panic("catc: invalid opcode reached the executor");
        }
    }
}

} // namespace rex::catc
