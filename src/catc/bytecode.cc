#include "catc/bytecode.hh"

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::catc {

namespace {

struct InputInfo {
    Input input;
    const char *name;
    bool isSet;
    bool isWitness;
};

/** One row per Input, in enum order (checked at load time). */
constexpr InputInfo kInputs[] = {
    {Input::Rf, "rf", false, true},
    {Input::Co, "co", false, true},
    {Input::Interrupt, "interrupt", false, true},
    {Input::Po, "po", false, false},
    {Input::PoLoc, "po-loc", false, false},
    {Input::Loc, "loc", false, false},
    {Input::Addr, "addr", false, false},
    {Input::Data, "data", false, false},
    {Input::Ctrl, "ctrl", false, false},
    {Input::Rmw, "rmw", false, false},
    {Input::Iio, "iio", false, false},
    {Input::Int, "int", false, false},
    {Input::Id, "id", false, false},
    {Input::R, "R", true, false},
    {Input::W, "W", true, false},
    {Input::M, "M", true, false},
    {Input::IW, "IW", true, false},
    {Input::A, "A", true, false},
    {Input::Q, "Q", true, false},
    {Input::L, "L", true, false},
    {Input::Isb, "ISB", true, false},
    {Input::Te, "TE", true, false},
    {Input::Tf, "TF", true, false},
    {Input::Eret, "ERET", true, false},
    {Input::Mrs, "MRS", true, false},
    {Input::Msr, "MSR", true, false},
    {Input::TakeInterrupt, "TakeInterrupt", true, false},
    {Input::GicEvents, "GICEvents", true, false},
    {Input::DmbSy, "DMB.SY", true, false},
    {Input::DmbLd, "DMB.LD", true, false},
    {Input::DmbSt, "DMB.ST", true, false},
    {Input::DsbSy, "DSB.SY", true, false},
    {Input::DsbLd, "DSB.LD", true, false},
    {Input::DsbSt, "DSB.ST", true, false},
    {Input::Universe, "_", true, false},
};

static_assert(sizeof(kInputs) / sizeof(kInputs[0]) ==
                  static_cast<std::size_t>(Input::Count_),
              "kInputs must cover every Input");

const InputInfo &
info(Input input)
{
    const auto index = static_cast<std::size_t>(input);
    rexAssert(index < static_cast<std::size_t>(Input::Count_),
              "catc: Input out of range");
    rexAssert(kInputs[index].input == input,
              "catc: kInputs out of enum order");
    return kInputs[index];
}

const char *
opName(OpCode code)
{
    switch (code) {
      case OpCode::LoadInput: return "load";
      case OpCode::ZeroRel: return "zero.rel";
      case OpCode::ZeroSet: return "zero.set";
      case OpCode::UnionRel: return "union.rel";
      case OpCode::InterRel: return "inter.rel";
      case OpCode::DiffRel: return "diff.rel";
      case OpCode::UnionSet: return "union.set";
      case OpCode::InterSet: return "inter.set";
      case OpCode::DiffSet: return "diff.set";
      case OpCode::Seq: return "seq";
      case OpCode::Closure: return "closure";
      case OpCode::RtClosure: return "rtclosure";
      case OpCode::OptionalRel: return "optional";
      case OpCode::InverseRel: return "inverse";
      case OpCode::IdentityOn: return "identity";
      case OpCode::ComplementSet: return "complement";
      case OpCode::DomainOf: return "domain";
      case OpCode::RangeOf: return "range";
      case OpCode::RestrictDomain: return "restrict.dom";
      case OpCode::RestrictRange: return "restrict.rng";
      case OpCode::Restricted: return "restricted";
      case OpCode::Cartesian: return "cartesian";
      case OpCode::Count_: break;
    }
    return "?";
}

} // namespace

bool
inputIsWitness(Input input)
{
    return info(input).isWitness;
}

bool
inputIsSet(Input input)
{
    return info(input).isSet;
}

const char *
inputName(Input input)
{
    return info(input).name;
}

Input
inputByName(const std::string &name)
{
    for (const InputInfo &entry : kInputs) {
        if (name == entry.name)
            return entry.input;
    }
    return Input::Count_;
}

Relation
loadInputRel(Input input, const CandidateExecution &cand)
{
    switch (input) {
      case Input::Rf: return cand.rf;
      case Input::Co: return cand.co;
      case Input::Interrupt: return cand.interruptWitness;
      case Input::Po: return cand.po;
      case Input::PoLoc: return cand.poLoc();
      case Input::Loc: return cand.sameLoc();
      case Input::Addr: return cand.addr;
      case Input::Data: return cand.data;
      case Input::Ctrl: return cand.ctrl;
      case Input::Rmw: return cand.rmw;
      case Input::Iio: return cand.iio;
      case Input::Int: return cand.internalPairs();
      case Input::Id: return Relation::identity(cand.size());
      default:
        break;
    }
    panic("catc: loadInputRel on a set input");
}

EventSet
loadInputSet(Input input, const CandidateExecution &cand)
{
    switch (input) {
      case Input::R: return cand.reads();
      case Input::W: return cand.writes();
      case Input::M: return cand.reads() | cand.writes();
      case Input::IW: return cand.initialWrites();
      case Input::A: return cand.acquires();
      case Input::Q: return cand.acquirePcs();
      case Input::L: return cand.releases();
      case Input::Isb: return cand.isb();
      case Input::Te: return cand.takeExceptions();
      case Input::Tf: return cand.translationFaults();
      case Input::Eret: return cand.erets();
      case Input::Mrs: return cand.mrsEvents();
      case Input::Msr: return cand.msrEvents();
      case Input::TakeInterrupt: return cand.takeInterrupts();
      case Input::GicEvents: return cand.gicEvents();
      case Input::DmbSy: return cand.barriersOf(BarrierKind::DmbSy);
      case Input::DmbLd: return cand.barriersOf(BarrierKind::DmbLd);
      case Input::DmbSt: return cand.barriersOf(BarrierKind::DmbSt);
      case Input::DsbSy: return cand.barriersOf(BarrierKind::DsbSy);
      case Input::DsbLd: return cand.barriersOf(BarrierKind::DsbLd);
      case Input::DsbSt: return cand.barriersOf(BarrierKind::DsbSt);
      case Input::Universe: return EventSet::universe(cand.size());
      default:
        break;
    }
    panic("catc: loadInputSet on a relation input");
}

std::string
Program::toString() const
{
    std::string out;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        out += format("r%zu = %s", i, opName(op.code));
        if (op.code == OpCode::LoadInput) {
            const auto input = static_cast<Input>(op.a);
            out += format(" %s",
                          op.a < static_cast<std::uint32_t>(Input::Count_)
                              ? inputName(input) : "?");
        } else {
            switch (op.code) {
              case OpCode::ZeroRel:
              case OpCode::ZeroSet:
                break;
              case OpCode::Closure:
              case OpCode::RtClosure:
              case OpCode::OptionalRel:
              case OpCode::InverseRel:
              case OpCode::IdentityOn:
              case OpCode::ComplementSet:
              case OpCode::DomainOf:
              case OpCode::RangeOf:
                out += format(" r%u", op.a);
                break;
              case OpCode::Restricted:
                out += format(" r%u r%u r%u", op.a, op.b, op.c);
                break;
              default:
                out += format(" r%u r%u", op.a, op.b);
                break;
            }
        }
        out += "\n";
    }
    for (const Check &check : checks) {
        const char *kind =
            check.kind == Check::Kind::Acyclic
                ? "acyclic"
                : check.kind == Check::Kind::Irreflexive ? "irreflexive"
                                                         : "empty";
        out += format("%s r%u as %s\n", kind, check.reg,
                      check.name.c_str());
    }
    return out;
}

std::string
verify(Program &program)
{
    std::vector<RegKind> kinds;
    kinds.reserve(program.ops.size());

    auto regOk = [&](std::uint32_t reg, std::size_t self) {
        return reg < self;
    };
    auto isRel = [&](std::uint32_t reg) {
        return kinds[reg] == RegKind::Rel;
    };
    auto isSet = [&](std::uint32_t reg) {
        return kinds[reg] == RegKind::Set;
    };

    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const Op &op = program.ops[i];
        auto bad = [&](const char *why) {
            return format("op %zu (%s): %s", i, opName(op.code), why);
        };
        switch (op.code) {
          case OpCode::LoadInput:
            if (op.a >= static_cast<std::uint32_t>(Input::Count_))
                return bad("input id out of range");
            kinds.push_back(inputIsSet(static_cast<Input>(op.a))
                                ? RegKind::Set : RegKind::Rel);
            break;
          case OpCode::ZeroRel:
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::ZeroSet:
            kinds.push_back(RegKind::Set);
            break;
          case OpCode::UnionRel:
          case OpCode::InterRel:
          case OpCode::DiffRel:
          case OpCode::Seq:
            if (!regOk(op.a, i) || !regOk(op.b, i))
                return bad("operand register out of range");
            if (!isRel(op.a) || !isRel(op.b))
                return bad("operand is not a relation");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::UnionSet:
          case OpCode::InterSet:
          case OpCode::DiffSet:
            if (!regOk(op.a, i) || !regOk(op.b, i))
                return bad("operand register out of range");
            if (!isSet(op.a) || !isSet(op.b))
                return bad("operand is not a set");
            kinds.push_back(RegKind::Set);
            break;
          case OpCode::Closure:
          case OpCode::RtClosure:
          case OpCode::OptionalRel:
          case OpCode::InverseRel:
            if (!regOk(op.a, i))
                return bad("operand register out of range");
            if (!isRel(op.a))
                return bad("operand is not a relation");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::IdentityOn:
            if (!regOk(op.a, i))
                return bad("operand register out of range");
            if (!isSet(op.a))
                return bad("operand is not a set");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::ComplementSet:
            if (!regOk(op.a, i))
                return bad("operand register out of range");
            if (!isSet(op.a))
                return bad("operand is not a set");
            kinds.push_back(RegKind::Set);
            break;
          case OpCode::DomainOf:
          case OpCode::RangeOf:
            if (!regOk(op.a, i))
                return bad("operand register out of range");
            if (!isRel(op.a))
                return bad("operand is not a relation");
            kinds.push_back(RegKind::Set);
            break;
          case OpCode::RestrictDomain:
          case OpCode::RestrictRange:
            if (!regOk(op.a, i) || !regOk(op.b, i))
                return bad("operand register out of range");
            if (!isRel(op.a) || !isSet(op.b))
                return bad("needs a relation and a set");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::Restricted:
            if (!regOk(op.a, i) || !regOk(op.b, i) || !regOk(op.c, i))
                return bad("operand register out of range");
            if (!isRel(op.a) || !isSet(op.b) || !isSet(op.c))
                return bad("needs a relation and two sets");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::Cartesian:
            if (!regOk(op.a, i) || !regOk(op.b, i))
                return bad("operand register out of range");
            if (!isSet(op.a) || !isSet(op.b))
                return bad("operand is not a set");
            kinds.push_back(RegKind::Rel);
            break;
          case OpCode::Count_:
            return bad("invalid opcode");
        }
    }

    for (std::size_t i = 0; i < program.checks.size(); ++i) {
        const Check &check = program.checks[i];
        if (check.reg >= program.ops.size()) {
            return format("check %zu (%s): register out of range", i,
                          check.name.c_str());
        }
        if (check.kind != Check::Kind::Empty &&
                kinds[check.reg] != RegKind::Rel) {
            return format("check %zu (%s): cyclicity check on a set", i,
                          check.name.c_str());
        }
    }

    program.kinds = std::move(kinds);
    return "";
}

} // namespace rex::catc
