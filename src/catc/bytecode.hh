/**
 * @file
 * catc clause bytecode: the flat program form the cat compiler lowers
 * models into.
 *
 * A Program is an SSA-ish sequence of ops over Relation/EventSet
 * registers — op i defines register i, operands always refer to earlier
 * ops — followed by a list of axiom checks (acyclic / irreflexive /
 * empty) over those registers. Leaf values are Inputs: the primitive
 * relations and event-kind sets of a CandidateExecution, exactly the
 * built-in vocabulary the cat evaluator installs
 * (src/cat/eval.cc installBuiltins).
 *
 * The split that makes compilation pay off is between witness inputs
 * (rf, co, interrupt — existentially quantified per candidate) and
 * skeleton inputs (everything else — fixed within one trace
 * combination): the executor (exec.hh) constant-folds every op whose
 * transitive inputs are all skeleton inputs once per combination, so
 * the per-candidate dispatch loop only touches the witness-dependent
 * tail. See docs/COMPILER.md.
 */

#ifndef REX_CATC_BYTECODE_HH
#define REX_CATC_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "events/candidate.hh"

namespace rex::catc {

/** Leaf values: the cat built-ins, loaded from a CandidateExecution. */
enum class Input : std::uint8_t {
    // Witness relations: vary per candidate, never folded.
    Rf,
    Co,
    Interrupt,

    // Skeleton relations: fixed within a trace combination.
    Po,
    PoLoc,
    Loc,
    Addr,
    Data,
    Ctrl,
    Rmw,
    Iio,
    Int,  //!< same-thread pairs
    Id,   //!< full identity

    // Event-kind sets (skeleton).
    R,
    W,
    M,
    IW,
    A,
    Q,
    L,
    Isb,
    Te,
    Tf,
    Eret,
    Mrs,
    Msr,
    TakeInterrupt,
    GicEvents,
    DmbSy,
    DmbLd,
    DmbSt,
    DsbSy,
    DsbLd,
    DsbSt,
    Universe,  //!< cat `_`

    Count_,
};

/** True for rf/co/interrupt: the per-candidate witness inputs. */
bool inputIsWitness(Input input);

/** True when @p input is an event set (false: a relation). */
bool inputIsSet(Input input);

/** The cat-source name of @p input ("po-loc", "DMB.SY", ...). */
const char *inputName(Input input);

/** The input named by a cat built-in identifier; Count_ when @p name
 *  is not a primitive input (derived names like "fr" compile to ops). */
Input inputByName(const std::string &name);

/** Load @p input from @p cand as a relation (inputIsSet must be
 *  false). */
Relation loadInputRel(Input input, const CandidateExecution &cand);

/** Load @p input from @p cand as a set (inputIsSet must be true). */
EventSet loadInputSet(Input input, const CandidateExecution &cand);

/**
 * One bytecode op. Register operands a/b/c index earlier ops; for
 * LoadInput, a is the Input id instead.
 */
enum class OpCode : std::uint8_t {
    LoadInput,       //!< a = Input id
    ZeroRel,         //!< empty relation
    ZeroSet,         //!< empty set
    UnionRel,        //!< rel(a) | rel(b)
    InterRel,        //!< rel(a) & rel(b)
    DiffRel,         //!< rel(a) - rel(b)
    UnionSet,        //!< set(a) | set(b)
    InterSet,        //!< set(a) & set(b)
    DiffSet,         //!< set(a) - set(b)
    Seq,             //!< rel(a) ; rel(b)
    Closure,         //!< rel(a)+
    RtClosure,       //!< rel(a)*
    OptionalRel,     //!< rel(a)?
    InverseRel,      //!< rel(a)^-1
    IdentityOn,      //!< [set(a)]
    ComplementSet,   //!< ~set(a)
    DomainOf,        //!< domain(rel(a))
    RangeOf,         //!< range(rel(a))
    RestrictDomain,  //!< [set(b)]; rel(a)
    RestrictRange,   //!< rel(a); [set(b)]
    Restricted,      //!< [set(b)]; rel(a); [set(c)]
    Cartesian,       //!< set(a) * set(b)
    Count_,
};

struct Op {
    OpCode code = OpCode::ZeroRel;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
};

/** What a register holds; assigned to every op by verify(). */
enum class RegKind : std::uint8_t { Rel, Set };

/** One axiom check over a register. */
struct Check {
    enum class Kind : std::uint8_t { Acyclic, Irreflexive, Empty };

    Kind kind = Kind::Acyclic;
    std::uint32_t reg = 0;
    std::string name;  //!< reported as the failed axiom
};

/** A compiled model: ops, checks, and (after verify()) register
 *  kinds. */
struct Program {
    std::vector<Op> ops;
    std::vector<Check> checks;

    /** Kind of each register; filled by verify(), empty before. */
    std::vector<RegKind> kinds;

    /** Stable identity (model revision + variant), for the worker
     *  protocol and diagnostics. */
    std::string id;

    /** Disassembly for docs/diagnostics. */
    std::string toString() const;
};

/**
 * Validate @p program: every operand register is defined by an earlier
 * op, operand kinds match the op (relations where relations are
 * required, sets where sets are), Input ids are in range, and every
 * check references a defined relation register (Empty also accepts a
 * set register). Fills program.kinds on success.
 *
 * @return empty string when valid, else a one-line diagnostic.
 */
std::string verify(Program &program);

} // namespace rex::catc

#endif // REX_CATC_BYTECODE_HH
