/**
 * @file
 * The process-wide compiled-program cache.
 *
 * Programs are keyed by programId() — "catc1:<model-revision>:<variant>"
 * — so a program is compiled once per (variant, model revision) and
 * shared by every test, shard, and rexd request in the process. rexd's
 * supervised workers are separate processes: the parent ships the id in
 * the rex-job-v1 frame and each worker satisfies it from its own cache
 * (compiling on first use), so the id doubles as the cross-process
 * cache key.
 *
 * The compiled path is on by default; REX_COMPILED_MODEL=0 is the
 * escape hatch back to the staged interpreter (re-read on every call so
 * tests can toggle it).
 */

#ifndef REX_CATC_CACHE_HH
#define REX_CATC_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "axiomatic/params.hh"
#include "catc/bytecode.hh"

namespace rex::catc {

/** Process-wide compile/cache counters (rexd_model_compiles_total and
 *  friends). */
struct CompileStats {
    std::uint64_t compiles = 0; //!< compileNative() runs
    std::uint64_t hits = 0;     //!< cache lookups served without compiling
    std::uint64_t misses = 0;   //!< cache lookups that had to compile
};

CompileStats compileStats();

/** Cache key / rex-job-v1 program id for @p params' native staged
 *  program. Embeds engine::kModelRevision so revisions never collide. */
std::string programId(const ModelParams &params);

/** False iff REX_COMPILED_MODEL is exactly "0" (re-read every call). */
bool compiledModelEnabled();

/**
 * The native staged program (no internal check — the enumerator's
 * coherence pre-filter covers it) for @p params, compiled on first use.
 * Never returns null; ignores REX_COMPILED_MODEL.
 */
std::shared_ptr<const Program> nativeStaged(const ModelParams &params);

/** nativeStaged(), or nullptr when the compiled path is disabled —
 *  the checker's single entry point. */
std::shared_ptr<const Program> programForCheck(const ModelParams &params);

class FoldPlan;

/**
 * The shared structural fold analysis (catc/exec.hh) of
 * nativeStaged(@p params), built on first use and cached beside the
 * program, or nullptr when the compiled path is disabled. Sharing the
 * plan keeps per-shard fold setup proportional to the constant ops, not
 * the whole program analysis.
 */
std::shared_ptr<const FoldPlan> planForCheck(const ModelParams &params);

} // namespace rex::catc

#endif // REX_CATC_CACHE_HH
