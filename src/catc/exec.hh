/**
 * @file
 * The catc executor: constant folding plus the per-candidate dispatch
 * loop.
 *
 * Splitting the fold in two keeps every stage's work proportional to
 * what can actually change:
 *  - A FoldPlan is the *structural* analysis of one Program: which ops
 *    are witness-dependent, the ascending per-check dependency lists,
 *    which checks resolve at fold time. It depends on nothing but the
 *    bytecode, so the program cache shares one plan per compiled
 *    program across every shard, worker, and checkTest call.
 *  - A FoldedProgram binds a plan to one trace combination: it
 *    evaluates every constant op (the SkeletonRelations equivalent gets
 *    baked into registers), resolves the constant checks to fixed
 *    outcomes (dead-code elimination: their ops never run again), and
 *    per candidate executes only the witness-dependent tails, via a
 *    computed-goto dispatch loop (switch fallback; REX_CATC_SWITCH=1
 *    forces it).
 *
 * refold() moves a FoldedProgram to the next trace combination. Since
 * combinations of one test usually differ only in read values — which
 * no static input depends on — it compares the combination's static
 * signature first and becomes a near-free no-op on a match.
 *
 * Two evaluation modes:
 *  - runFast(): verdict only. Checks are visited in descending
 *    measured-failure order (most-selective first, stable on ties) and
 *    short-circuit on the first failure; acyclicity uses
 *    Relation::hasCycle() (no closure, no cycle extraction).
 *  - runAttributed(): program order, and the first failure carries its
 *    axiom name and cycle with exactly the interpreter's semantics
 *    (acyclic -> findCycle of the pre-closure value, irreflexive ->
 *    first reflexive event as a 1-cycle).
 *
 * Both modes agree on the verdict; callers use runAttributed() only
 * when the failure diagnostic is actually needed (the checker's
 * first-satisfying-rejection), mirroring the staged checker.
 *
 * Not thread-safe: one FoldedProgram per accumulator/shard, like the
 * skeleton cache it replaces. A FoldPlan is immutable after
 * construction and safe to share across threads.
 */

#ifndef REX_CATC_EXEC_HH
#define REX_CATC_EXEC_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "axiomatic/model.hh"
#include "catc/bytecode.hh"

namespace rex::engine { class CancelToken; }

namespace rex::catc {

/** The combination-invariant structural analysis of one Program. */
class FoldPlan
{
  public:
    /**
     * Analyse @p program: witness-dependence per op, dependency lists
     * per check. @p program must have been verify()'d (kinds filled)
     * and must outlive the plan.
     */
    explicit FoldPlan(const Program &program);

    const Program &program() const { return *_program; }

    /** Witness-dependent ops (the per-candidate tail). */
    std::size_t liveOps() const { return _liveOps; }

    /** Checks over constant registers (resolved at fold time). */
    std::size_t constChecks() const { return _constChecks; }

  private:
    friend class FoldedProgram;

    const Program *_program;
    std::vector<std::uint8_t> _isConst;   //!< per op
    std::vector<std::uint32_t> _constOps; //!< const ops, ascending
    std::vector<std::uint8_t> _checkConst; //!< per check
    /** Per check: its witness-dependent ops, ascending. */
    std::vector<std::vector<std::uint32_t>> _deps;
    std::size_t _liveOps = 0;
    std::size_t _constChecks = 0;
};

/** A program constant-folded against one trace combination. */
class FoldedProgram
{
  public:
    /**
     * Fold @p plan's program against @p cand's skeleton. @p plan is
     * borrowed and must outlive this object (the program cache's plans
     * live for the process; see catc/cache.hh).
     */
    FoldedProgram(const FoldPlan &plan, const CandidateExecution &cand);

    /** Convenience for one-off folds (tests, tools): analyses
     *  @p program privately, then folds against @p cand. */
    FoldedProgram(const Program &program, const CandidateExecution &cand);

    /**
     * Re-fold for a new trace combination of the same program, reusing
     * the plan and the register storage. When the new combination's
     * static signature matches the folded one — common for
     * combinations that differ only in read values — this is a
     * near-free no-op; otherwise the constant ops and constant checks
     * re-run. Measured failure counts survive either way, so the fast
     * path's selectivity ordering keeps learning across combinations.
     */
    void refold(const CandidateExecution &cand);

    /** Verdict-only check; failedAxiom/cycle are never filled. A
     *  tripped @p cancel token aborts before the witness tail runs. */
    ModelResult runFast(const CandidateExecution &cand,
                        const engine::CancelToken *cancel = nullptr);

    /** Program-order check; the first failure carries axiom + cycle. */
    ModelResult runAttributed(const CandidateExecution &cand,
                              const engine::CancelToken *cancel = nullptr);

    /** Ops surviving the fold (witness-dependent tail), for tests. */
    std::size_t liveOps() const { return _plan->liveOps(); }

    /** Checks resolved entirely at fold time, for tests. */
    std::size_t constChecks() const { return _plan->constChecks(); }

  private:
    struct RegValue {
        Relation rel;
        EventSet set;
    };

    /** A check's fold-time resolution (when its register is const). */
    struct ConstOutcome {
        bool known = false;
        bool passed = true;
        std::optional<std::vector<EventId>> cycle;
    };

    /**
     * The per-event fields the static (non-witness) inputs depend on.
     * Deliberately excludes read values and GIC payload fields: trace
     * combinations that differ only there share every folded register.
     * Must stay in sync with loadInputRel/loadInputSet (bytecode.cc) —
     * any new Input whose value depends on another Event field needs
     * that field added here.
     */
    struct EventSig {
        EventKind kind;
        ThreadId tid;
        LocationId loc;
        AccessFlags flags;
        bool initial;
        BarrierKind barrier;
        ExceptionClass exceptionClass;

        bool operator==(const EventSig &) const = default;
    };

    /** Static signature of the folded combination (see refold()). */
    struct StaticSig {
        std::vector<EventSig> events;
        Relation po, iio, addr, data, ctrl, rmw;
    };

    void fold(const CandidateExecution &cand);
    void executePending(const CandidateExecution &cand);
    bool gatherPending(const std::vector<std::uint32_t> &deps);
    bool matchesStatic(const CandidateExecution &cand) const;
    void captureStatic(const CandidateExecution &cand);
    bool checkPassesFast(std::size_t index);
    ConstOutcome evalOutcome(std::size_t index) const;

    std::shared_ptr<const FoldPlan> _owned; //!< set by the Program ctor
    const FoldPlan *_plan;
    std::size_t _n = 0;
    bool _forceSwitch = false;

    std::vector<RegValue> _regs;
    std::vector<ConstOutcome> _constOutcome; //!< per check
    std::vector<std::uint64_t> _failures;    //!< per check (selectivity)
    std::vector<std::uint32_t> _order;       //!< fast-mode visit order
    bool _orderDirty = true;                 //!< failure counts changed
    StaticSig _sig;                          //!< folded combination's

    // Per-run scratch: epoch-tagged "already executed" marks and the
    // pending-op list the dispatch loop consumes.
    std::vector<std::uint64_t> _doneEpoch;
    std::uint64_t _epoch = 0;
    std::vector<std::uint32_t> _pending;
};

} // namespace rex::catc

#endif // REX_CATC_EXEC_HH
