/**
 * @file
 * The cat-model compilers: lower either the native Figure 9 clause
 * structure or a parsed .cat AST into clause bytecode (bytecode.hh).
 *
 * Both compilers bake the model parameters in at compile time — `if
 * "FLAG"` expressions and params-conditioned clauses are resolved
 * during lowering, never dispatched at runtime — and CSE-deduplicate
 * identical ops, so a program is compiled once per (variant,
 * model-revision) and reused across every test and candidate.
 */

#ifndef REX_CATC_COMPILE_HH
#define REX_CATC_COMPILE_HH

#include <map>
#include <optional>
#include <string>

#include "axiomatic/params.hh"
#include "cat/ast.hh"
#include "catc/bytecode.hh"

namespace rex::catc {

/**
 * Compile the native model (src/axiomatic/model.cc's clause structure)
 * for @p params. The resulting program's checks are named exactly like
 * checkConsistent's axioms ("internal", "external", "atomic") and
 * produce the same verdicts and the same cycles.
 *
 * @param include_internal emit the internal (SC-per-location) check;
 *        the staged checker omits it because the enumerator's coherence
 *        pre-filter already established it (internal_prechecked).
 */
Program compileNative(const ModelParams &params, bool include_internal);

/** Outcome of compiling a cat AST: a verified program, or the reason
 *  the file is outside the compilable subset. */
struct CatCompileResult {
    std::optional<Program> program;
    std::string error;
};

/**
 * Lower a parsed cat file to bytecode under a fixed flag assignment.
 *
 * The compilable subset is everything the shipped models use:
 * non-recursive lets, all expression forms, and acyclic / irreflexive /
 * empty checks. `let rec`, `include` (flatten first — CatModel does at
 * load), and `flag` diagnostics are rejected with an explanatory error;
 * callers fall back to the interpreter.
 */
CatCompileResult compileCat(const cat::CatFile &file,
                            const std::map<std::string, bool> &flags);

} // namespace rex::catc

#endif // REX_CATC_COMPILE_HH
