#include "catc/cache.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "catc/compile.hh"
#include "catc/exec.hh"
#include "engine/cache.hh"

namespace rex::catc {

namespace {

std::atomic<std::uint64_t> gCompiles{0};
std::atomic<std::uint64_t> gHits{0};
std::atomic<std::uint64_t> gMisses{0};

std::mutex gMutex;

std::unordered_map<std::string, std::shared_ptr<const Program>> &
programs()
{
    static auto *map =
        new std::unordered_map<std::string,
                               std::shared_ptr<const Program>>();
    return *map;
}

} // namespace

CompileStats
compileStats()
{
    CompileStats stats;
    stats.compiles = gCompiles.load(std::memory_order_relaxed);
    stats.hits = gHits.load(std::memory_order_relaxed);
    stats.misses = gMisses.load(std::memory_order_relaxed);
    return stats;
}

std::string
programId(const ModelParams &params)
{
    return std::string("catc1:") + engine::kModelRevision + ":" +
           params.name();
}

bool
compiledModelEnabled()
{
    const char *value = std::getenv("REX_COMPILED_MODEL");
    return !(value && value[0] == '0' && value[1] == '\0');
}

std::shared_ptr<const Program>
nativeStaged(const ModelParams &params)
{
    const std::string id = programId(params);
    {
        std::lock_guard<std::mutex> lock(gMutex);
        auto it = programs().find(id);
        if (it != programs().end()) {
            gHits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    gMisses.fetch_add(1, std::memory_order_relaxed);

    // Compile outside the lock; a racing thread may compile too, in
    // which case the first insert wins and the loser's copy is dropped
    // (the counters record every actual compile).
    auto program = std::make_shared<Program>(compileNative(params, false));
    program->id = id;
    gCompiles.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(gMutex);
    auto [it, inserted] = programs().emplace(id, std::move(program));
    return it->second;
}

std::shared_ptr<const Program>
programForCheck(const ModelParams &params)
{
    if (!compiledModelEnabled())
        return nullptr;
    return nativeStaged(params);
}

namespace {

/** A plan bundled with the program it analyses, so the shared_ptr
 *  keeps both alive (plans borrow their program). */
struct PlanEntry {
    std::shared_ptr<const Program> program;
    FoldPlan plan;

    explicit PlanEntry(std::shared_ptr<const Program> p)
        : program(std::move(p)), plan(*program) {}
};

std::unordered_map<std::string, std::shared_ptr<const PlanEntry>> &
plans()
{
    static auto *map =
        new std::unordered_map<std::string,
                               std::shared_ptr<const PlanEntry>>();
    return *map;
}

} // namespace

std::shared_ptr<const FoldPlan>
planForCheck(const ModelParams &params)
{
    if (!compiledModelEnabled())
        return nullptr;
    const std::string id = programId(params);
    {
        std::lock_guard<std::mutex> lock(gMutex);
        auto it = plans().find(id);
        if (it != plans().end())
            return {it->second, &it->second->plan};
    }
    // Analyse outside the lock; first insert wins on a race.
    auto entry = std::make_shared<const PlanEntry>(nativeStaged(params));
    std::lock_guard<std::mutex> lock(gMutex);
    auto [it, inserted] = plans().emplace(id, std::move(entry));
    return {it->second, &it->second->plan};
}

} // namespace rex::catc
