/**
 * @file
 * Evaluator for cat models over candidate executions.
 *
 * Binds the cat built-in names (event sets R, W, ISB, TE, ERET, MRS, MSR,
 * TakeInterrupt, ...; relations po, addr, data, ctrl, rf, co, fr, ...)
 * from a CandidateExecution, evaluates let-bindings, and runs the
 * acyclic/irreflexive/empty checks.
 */

#ifndef REX_CAT_EVAL_HH
#define REX_CAT_EVAL_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cat/ast.hh"
#include "events/candidate.hh"

namespace rex::cat {

/** A cat runtime value: a relation, an event set, or polymorphic zero. */
class Value
{
  public:
    enum class Kind { Zero, Rel, Set };

    Value() = default;

    static Value zero() { return Value(); }

    static Value
    rel(Relation relation)
    {
        Value v;
        v._kind = Kind::Rel;
        v._rel = std::move(relation);
        return v;
    }

    static Value
    set(EventSet events)
    {
        Value v;
        v._kind = Kind::Set;
        v._set = std::move(events);
        return v;
    }

    Kind kind() const { return _kind; }

    /** View as a relation (zero coerces to the empty relation). */
    const Relation &asRel(std::size_t universe) const;

    /** View as a set (zero coerces to the empty set). */
    const EventSet &asSet(std::size_t universe) const;

  private:
    Kind _kind = Kind::Zero;
    Relation _rel;
    EventSet _set;
    // Coercion caches (filled lazily for Zero).
    mutable std::optional<Relation> _zeroRel;
    mutable std::optional<EventSet> _zeroSet;
};

/** Outcome of one `acyclic/irreflexive/empty ... as name` check. */
struct CheckOutcome {
    std::string name;
    Statement::CheckKind kind = Statement::CheckKind::Acyclic;
    bool passed = true;
    std::optional<std::vector<EventId>> cycle;
};

/** Outcome of evaluating a whole model on one candidate. */
struct EvalResult {
    bool consistent = true;
    std::vector<CheckOutcome> checks;
};

/** Resolves `include "file"` to the file's source text. */
using IncludeResolver = std::function<std::string(const std::string &)>;

/** Evaluates one cat file against one candidate execution. */
class Evaluator
{
  public:
    /**
     * @param candidate the candidate execution (owned by caller)
     * @param flags     variant flags ("SEA_R", "FEAT_ExS", ...)
     * @param resolver  include resolution (empty = includes are errors)
     */
    Evaluator(const CandidateExecution &candidate,
              const std::map<std::string, bool> &flags,
              IncludeResolver resolver);

    /** Evaluate all statements; returns the collected check outcomes. */
    EvalResult evaluateFile(const CatFile &file);

    /** Look up a binding (for tests), fatal() when absent. */
    const Value &binding(const std::string &name) const;

  private:
    void installBuiltins();
    void evaluateStatements(const std::vector<Statement> &statements,
                            EvalResult &result);
    Value eval(const Expr &expr);
    bool evalCond(const FlagCond &cond) const;

    const CandidateExecution &_cand;
    std::map<std::string, bool> _flags;
    IncludeResolver _resolver;
    std::map<std::string, Value> _env;
    std::size_t _n;
};

} // namespace rex::cat

#endif // REX_CAT_EVAL_HH
