/**
 * @file
 * Lexer for the `cat` memory-model language subset used by the paper's
 * Figure 9 model (herdtools-compatible syntax).
 */

#ifndef REX_CAT_LEXER_HH
#define REX_CAT_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rex::cat {

/** Token kinds of the cat subset. */
enum class TokKind : std::uint8_t {
    Ident,       //!< identifier (may contain '-', '.', '_')
    String,      //!< "flag name" or include path
    KwLet,
    KwInclude,
    KwAcyclic,
    KwIrreflexive,
    KwEmpty,
    KwAs,
    KwIf,
    KwThen,
    KwElse,
    KwAnd,       //!< 'and' joining mutually recursive lets
    KwRec,       //!< 'let rec'
    KwShow,      //!< herd display directives (accepted, ignored)
    KwUnshow,
    KwFlag,      //!< 'flag <check> expr as name'
    Zero,        //!< the polymorphic empty value '0'
    Pipe,        //!< '|'
    Amp,         //!< '&'
    Semi,        //!< ';'
    Backslash,   //!< '\' (difference)
    Plus,        //!< '+'
    Star,        //!< '*'
    Question,    //!< '?'
    Tilde,       //!< '~'
    Equals,      //!< '='
    Inverse,     //!< '^-1'
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,       //!< only in show/unshow lists
    End,
};

/** One token, with its source line for error reporting. */
struct Tok {
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
};

/**
 * Tokenise a cat source text. Handles (* ... *) comments (nested) and
 * // line comments.
 * @throws FatalError on lexical errors.
 */
std::vector<Tok> tokenize(const std::string &source);

} // namespace rex::cat

#endif // REX_CAT_LEXER_HH
