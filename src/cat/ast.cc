#include "cat/ast.hh"

namespace rex::cat {

std::string
Expr::toString() const
{
    switch (kind) {
      case Kind::Name:
        return name;
      case Kind::Zero:
        return "0";
      case Kind::Union:
        return "(" + lhs->toString() + " | " + rhs->toString() + ")";
      case Kind::Inter:
        return "(" + lhs->toString() + " & " + rhs->toString() + ")";
      case Kind::Diff:
        return "(" + lhs->toString() + " \\ " + rhs->toString() + ")";
      case Kind::Seq:
        return "(" + lhs->toString() + "; " + rhs->toString() + ")";
      case Kind::Closure:
        return lhs->toString() + "+";
      case Kind::RtClosure:
        return lhs->toString() + "*";
      case Kind::Optional:
        return lhs->toString() + "?";
      case Kind::Inverse:
        return lhs->toString() + "^-1";
      case Kind::Complement:
        return "~" + lhs->toString();
      case Kind::Bracket:
        return "[" + lhs->toString() + "]";
      case Kind::If:
        return "(if ... then " + lhs->toString() + " else " +
            rhs->toString() + ")";
      case Kind::App:
        return name + "(" + lhs->toString() + ")";
    }
    return "?";
}

} // namespace rex::cat
