#include "cat/lexer.hh"

#include <cctype>

#include "base/logging.hh"

namespace rex::cat {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.' || c == '-';
}

TokKind
keywordKind(const std::string &word)
{
    if (word == "let")
        return TokKind::KwLet;
    if (word == "include")
        return TokKind::KwInclude;
    if (word == "acyclic")
        return TokKind::KwAcyclic;
    if (word == "irreflexive")
        return TokKind::KwIrreflexive;
    if (word == "empty")
        return TokKind::KwEmpty;
    if (word == "as")
        return TokKind::KwAs;
    if (word == "if")
        return TokKind::KwIf;
    if (word == "then")
        return TokKind::KwThen;
    if (word == "else")
        return TokKind::KwElse;
    if (word == "and")
        return TokKind::KwAnd;
    if (word == "rec")
        return TokKind::KwRec;
    if (word == "show")
        return TokKind::KwShow;
    if (word == "unshow")
        return TokKind::KwUnshow;
    if (word == "flag")
        return TokKind::KwFlag;
    return TokKind::Ident;
}

} // namespace

std::vector<Tok>
tokenize(const std::string &source)
{
    std::vector<Tok> tokens;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto push = [&](TokKind kind, std::string text = "") {
        tokens.push_back({kind, std::move(text), line});
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // (* nested comments *)
        if (c == '(' && i + 1 < n && source[i + 1] == '*') {
            int depth = 1;
            i += 2;
            while (i < n && depth > 0) {
                if (source[i] == '\n')
                    ++line;
                if (source[i] == '(' && i + 1 < n && source[i + 1] == '*') {
                    ++depth;
                    i += 2;
                } else if (source[i] == '*' && i + 1 < n &&
                           source[i + 1] == ')') {
                    --depth;
                    i += 2;
                } else {
                    ++i;
                }
            }
            if (depth > 0)
                fatal("unterminated cat comment");
            continue;
        }
        // // line comments
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '"') {
            std::size_t start = ++i;
            while (i < n && source[i] != '"')
                ++i;
            if (i >= n)
                fatal("unterminated string in cat source");
            push(TokKind::String, source.substr(start, i - start));
            ++i;
            continue;
        }
        if (c == '0' && (i + 1 >= n || !isIdentChar(source[i + 1]))) {
            push(TokKind::Zero);
            ++i;
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            std::string word = source.substr(start, i - start);
            // Identifiers may contain '-', but a trailing '-' belongs to
            // the next token (e.g. in "a -b" there is no such case in
            // practice; cat names like po-loc keep theirs).
            push(keywordKind(word), word);
            continue;
        }
        switch (c) {
          case '|': push(TokKind::Pipe); ++i; continue;
          case '&': push(TokKind::Amp); ++i; continue;
          case ';': push(TokKind::Semi); ++i; continue;
          case '\\': push(TokKind::Backslash); ++i; continue;
          case '+': push(TokKind::Plus); ++i; continue;
          case '*': push(TokKind::Star); ++i; continue;
          case '?': push(TokKind::Question); ++i; continue;
          case '~': push(TokKind::Tilde); ++i; continue;
          case '=': push(TokKind::Equals); ++i; continue;
          case '(': push(TokKind::LParen); ++i; continue;
          case ')': push(TokKind::RParen); ++i; continue;
          case '[': push(TokKind::LBracket); ++i; continue;
          case ']': push(TokKind::RBracket); ++i; continue;
          case ',': push(TokKind::Comma); ++i; continue;
          case '^':
            if (i + 2 < n && source[i + 1] == '-' && source[i + 2] == '1') {
                push(TokKind::Inverse);
                i += 3;
                continue;
            }
            fatal("bad '^' operator in cat source (expected ^-1)");
          default:
            fatal(std::string("unexpected character '") + c +
                  "' in cat source at line " + std::to_string(line));
        }
    }
    push(TokKind::End);
    return tokens;
}

} // namespace rex::cat
