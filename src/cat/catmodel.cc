#include "cat/catmodel.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "cat/parser.hh"

namespace rex::cat {

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open cat file '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
dirnameOf(const std::string &path)
{
    auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return path.substr(0, slash);
}

/**
 * Splice included files' statements in place of each `include`, in
 * order, recursively. Flattening once at load time means evaluation
 * (and compilation) never touches the disk again — previously every
 * evaluate() re-read and re-parsed the includes per candidate.
 */
void
flattenIncludes(CatFile &file, const std::string &dir, int depth)
{
    if (depth > 16)
        fatal("cat include nesting too deep (include cycle?)");
    std::vector<Statement> flat;
    flat.reserve(file.statements.size());
    for (Statement &stmt : file.statements) {
        if (stmt.kind != Statement::Kind::Include) {
            flat.push_back(std::move(stmt));
            continue;
        }
        CatFile included =
            parseCat(readFile(dir + "/" + stmt.includePath));
        flattenIncludes(included, dir, depth + 1);
        for (Statement &inner : included.statements)
            flat.push_back(std::move(inner));
    }
    file.statements = std::move(flat);
}

} // namespace

std::map<std::string, bool>
flagsFor(const ModelParams &params)
{
    return {
        {"FEAT_ExS", params.featExS},
        {"EIS", params.eis},
        {"EOS", params.eos},
        {"SEA_R", params.seaR},
        {"SEA_W", params.seaW},
        {"FEAT_ETS2", params.featEts2},
        {"GIC", params.gicExtension},
    };
}

std::string
modelDir()
{
#ifdef REX_MODEL_DIR
    return REX_MODEL_DIR;
#else
    return "models";
#endif
}

std::string
defaultModelPath()
{
    return modelDir() + "/aarch64-exceptions.cat";
}

CatModel
CatModel::loadFile(const std::string &path)
{
    return fromSource(readFile(path), dirnameOf(path));
}

CatModel
CatModel::fromSource(const std::string &source,
                     const std::string &include_dir)
{
    CatModel model;
    model._file = parseCat(source);
    flattenIncludes(model._file, include_dir, 0);
    model._includeDir = include_dir;
    return model;
}

const CatModel &
CatModel::shipped()
{
    static const CatModel *model =
        new CatModel(loadFile(defaultModelPath()));
    return *model;
}

EvalResult
CatModel::evaluate(const CandidateExecution &candidate,
                   const ModelParams &params) const
{
    // Includes were flattened at load time; keep a resolver anyway so
    // a file handed to us with stray includes still evaluates.
    std::string dir = _includeDir;
    IncludeResolver resolver = [dir](const std::string &name) {
        return readFile(dir + "/" + name);
    };
    Evaluator evaluator(candidate, flagsFor(params), resolver);
    return evaluator.evaluateFile(_file);
}

ModelResult
CatModel::check(const CandidateExecution &candidate,
                const ModelParams &params) const
{
    EvalResult eval_result = evaluate(candidate, params);
    ModelResult result;
    result.consistent = eval_result.consistent;
    for (const CheckOutcome &outcome : eval_result.checks) {
        if (!outcome.passed) {
            result.failedAxiom = outcome.name;
            result.cycle = outcome.cycle;
            break;
        }
    }
    return result;
}

} // namespace rex::cat
