/**
 * @file
 * Recursive-descent parser for the cat subset.
 *
 * Operator precedence (loosest to tightest): `|`, `\`, `&`, `;`, then
 * postfix `+ * ? ^-1`, prefix `~`, and atoms. The branches of
 * `if ... then ... else ...` parse at `;` level, so a union continues
 * *after* the conditional (as Figure 9's layout intends); parenthesise a
 * branch to put a union inside it.
 */

#ifndef REX_CAT_PARSER_HH
#define REX_CAT_PARSER_HH

#include <string>

#include "cat/ast.hh"

namespace rex::cat {

/**
 * Parse a cat source text.
 * @throws FatalError on syntax errors.
 */
CatFile parseCat(const std::string &source);

} // namespace rex::cat

#endif // REX_CAT_PARSER_HH
