/**
 * @file
 * CatModel: a memory model loaded from a .cat file, usable as a drop-in
 * alternative to the native model of src/axiomatic/model.hh.
 *
 * The repository ships the paper's Figure 9 model as
 * models/aarch64-exceptions.cat (with its cos.cat / arm-common.cat
 * includes); tests cross-validate it against the native implementation
 * over the entire litmus library.
 */

#ifndef REX_CAT_CATMODEL_HH
#define REX_CAT_CATMODEL_HH

#include <map>
#include <string>

#include "axiomatic/model.hh"
#include "axiomatic/params.hh"
#include "cat/ast.hh"
#include "cat/eval.hh"

namespace rex::cat {

/** The flag assignment a ModelParams induces for cat evaluation. */
std::map<std::string, bool> flagsFor(const ModelParams &params);

/** Directory holding the shipped .cat files. */
std::string modelDir();

/** Path of the shipped exceptions model. */
std::string defaultModelPath();

/** A parsed cat model bound to an include directory. */
class CatModel
{
  public:
    /** Load from a file; includes resolve relative to the file's dir. */
    static CatModel loadFile(const std::string &path);

    /** Parse from source; includes resolve in @p include_dir. */
    static CatModel fromSource(const std::string &source,
                               const std::string &include_dir);

    /** The shipped aarch64-exceptions.cat. */
    static const CatModel &shipped();

    /** Model name from the leading string of the file. */
    const std::string &name() const { return _file.modelName; }

    /** The parsed (include-flattened) AST — what compilers consume. */
    const CatFile &file() const { return _file; }

    /**
     * Check one candidate, producing the same ModelResult shape as the
     * native checkConsistent (failedAxiom = first failed check's name).
     */
    ModelResult check(const CandidateExecution &candidate,
                      const ModelParams &params) const;

    /** Raw evaluation with all check outcomes. */
    EvalResult evaluate(const CandidateExecution &candidate,
                        const ModelParams &params) const;

  private:
    CatFile _file;
    std::string _includeDir;
};

} // namespace rex::cat

#endif // REX_CAT_CATMODEL_HH
