/**
 * @file
 * AST for the cat subset: expressions over relations and event sets,
 * flag conditions, let-bindings, includes, and axiom checks.
 */

#ifndef REX_CAT_AST_HH
#define REX_CAT_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace rex::cat {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Flag condition of an `if "FLAG" ...` expression. */
struct FlagCond {
    enum class Kind { Flag, Not, And, Or };
    Kind kind = Kind::Flag;
    std::string flag;                        //!< for Kind::Flag
    std::unique_ptr<FlagCond> lhs, rhs;      //!< for Not (lhs) / And / Or
};
using FlagCondPtr = std::unique_ptr<FlagCond>;

/** Expression node. */
struct Expr {
    enum class Kind {
        Name,        //!< identifier
        Zero,        //!< polymorphic empty
        Union,       //!< a | b
        Inter,       //!< a & b
        Diff,        //!< a \ b
        Seq,         //!< a ; b
        Closure,     //!< a+
        RtClosure,   //!< a*
        Optional,    //!< a?
        Inverse,     //!< a^-1
        Complement,  //!< ~a
        Bracket,     //!< [S]
        If,          //!< if cond then a else b
        App,         //!< fn(a): range(), domain()
    };

    Kind kind = Kind::Zero;
    std::string name;         //!< Name / App function name
    ExprPtr lhs, rhs;         //!< operands
    FlagCondPtr cond;         //!< If condition
    int line = 0;

    /** Render back to cat-ish syntax for diagnostics. */
    std::string toString() const;
};

/** Top-level statement. */
struct Statement {
    enum class Kind {
        Let,
        Check,
        Include,
        Show,   //!< herd display directive (ignored)
        Flag,   //!< herd 'flag ~empty e as name' diagnostic
    };

    /** Axiom-check flavour. */
    enum class CheckKind { Acyclic, Irreflexive, Empty };

    Kind kind = Kind::Let;

    // Let: possibly several `and`-joined bindings.
    std::vector<std::pair<std::string, ExprPtr>> bindings;

    /** 'let rec': the bindings are evaluated to a least fixpoint. */
    bool recursive = false;

    // Check:
    CheckKind check = CheckKind::Acyclic;
    ExprPtr checkExpr;
    std::string checkName;

    // Include:
    std::string includePath;

    // Flag:
    bool flagNegated = false;

    int line = 0;
};

/** A parsed cat file. */
struct CatFile {
    std::string modelName;
    std::vector<Statement> statements;
};

} // namespace rex::cat

#endif // REX_CAT_AST_HH
