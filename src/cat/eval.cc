#include "cat/eval.hh"

#include "base/logging.hh"
#include "cat/parser.hh"

namespace rex::cat {

const Relation &
Value::asRel(std::size_t universe) const
{
    if (_kind == Kind::Rel)
        return _rel;
    if (_kind == Kind::Zero) {
        if (!_zeroRel)
            _zeroRel = Relation(universe);
        return *_zeroRel;
    }
    fatal("cat type error: expected a relation, got a set");
}

const EventSet &
Value::asSet(std::size_t universe) const
{
    if (_kind == Kind::Set)
        return _set;
    if (_kind == Kind::Zero) {
        if (!_zeroSet)
            _zeroSet = EventSet(universe);
        return *_zeroSet;
    }
    fatal("cat type error: expected a set, got a relation");
}

Evaluator::Evaluator(const CandidateExecution &candidate,
                     const std::map<std::string, bool> &flags,
                     IncludeResolver resolver)
    : _cand(candidate), _flags(flags), _resolver(std::move(resolver)),
      _n(candidate.size())
{
    installBuiltins();
}

void
Evaluator::installBuiltins()
{
    auto set = [&](const char *name, EventSet s) {
        _env[name] = Value::set(std::move(s));
    };
    auto rel = [&](const char *name, Relation r) {
        _env[name] = Value::rel(std::move(r));
    };

    // --- event sets ---
    set("R", _cand.reads());
    set("W", _cand.writes());
    set("M", _cand.reads() | _cand.writes());
    set("IW", _cand.initialWrites());
    set("A", _cand.acquires());
    set("Q", _cand.acquirePcs());
    set("L", _cand.releases());
    set("ISB", _cand.isb());
    set("TE", _cand.takeExceptions());
    set("TF", _cand.translationFaults());
    set("ERET", _cand.erets());
    set("MRS", _cand.mrsEvents());
    set("MSR", _cand.msrEvents());
    set("TakeInterrupt", _cand.takeInterrupts());
    set("GICEvents", _cand.gicEvents());
    set("DMB.SY", _cand.barriersOf(BarrierKind::DmbSy));
    set("DMB.LD", _cand.barriersOf(BarrierKind::DmbLd));
    set("DMB.ST", _cand.barriersOf(BarrierKind::DmbSt));
    set("DSB.SY", _cand.barriersOf(BarrierKind::DsbSy));
    set("DSB.LD", _cand.barriersOf(BarrierKind::DsbLd));
    set("DSB.ST", _cand.barriersOf(BarrierKind::DsbSt));
    set("_", EventSet::universe(_n));

    // --- relations ---
    rel("id", Relation::identity(_n));
    rel("po", _cand.po);
    rel("po-loc", _cand.poLoc());
    rel("loc", _cand.sameLoc());
    rel("addr", _cand.addr);
    rel("data", _cand.data);
    rel("ctrl", _cand.ctrl);
    rel("rmw", _cand.rmw);
    rel("rf", _cand.rf);
    rel("rfi", _cand.rfi());
    rel("rfe", _cand.rfe());
    rel("co", _cand.co);
    rel("coi", _cand.coi());
    rel("coe", _cand.coe());
    rel("fr", _cand.fr());
    rel("fri", _cand.fri());
    rel("fre", _cand.fre());
    rel("int", _cand.internalPairs());
    rel("ext", Relation::cartesian(EventSet::universe(_n),
                                   EventSet::universe(_n)) -
               _cand.internalPairs() - Relation::identity(_n));
    rel("iio", _cand.iio);
    rel("interrupt", _cand.interruptWitness);
}

bool
Evaluator::evalCond(const FlagCond &cond) const
{
    switch (cond.kind) {
      case FlagCond::Kind::Flag: {
        auto it = _flags.find(cond.flag);
        return it != _flags.end() && it->second;
      }
      case FlagCond::Kind::Not:
        return !evalCond(*cond.lhs);
      case FlagCond::Kind::And:
        return evalCond(*cond.lhs) && evalCond(*cond.rhs);
      case FlagCond::Kind::Or:
        return evalCond(*cond.lhs) || evalCond(*cond.rhs);
    }
    return false;
}

Value
Evaluator::eval(const Expr &expr)
{
    switch (expr.kind) {
      case Expr::Kind::Zero:
        return Value::zero();

      case Expr::Kind::Name: {
        auto it = _env.find(expr.name);
        if (it == _env.end())
            fatal("cat: unbound name '" + expr.name + "' at line " +
                  std::to_string(expr.line));
        return it->second;
      }

      case Expr::Kind::Union:
      case Expr::Kind::Inter:
      case Expr::Kind::Diff: {
        Value lhs = eval(*expr.lhs);
        Value rhs = eval(*expr.rhs);
        // Polymorphic: sets combine with sets, relations with relations;
        // zero adopts the other side's kind.
        bool any_set = lhs.kind() == Value::Kind::Set ||
            rhs.kind() == Value::Kind::Set;
        bool any_rel = lhs.kind() == Value::Kind::Rel ||
            rhs.kind() == Value::Kind::Rel;
        if (any_set && any_rel)
            fatal("cat type error: mixing a set and a relation at line " +
                  std::to_string(expr.line));
        if (any_set) {
            const EventSet &a = lhs.asSet(_n);
            const EventSet &b = rhs.asSet(_n);
            if (expr.kind == Expr::Kind::Union)
                return Value::set(a | b);
            if (expr.kind == Expr::Kind::Inter)
                return Value::set(a & b);
            return Value::set(a - b);
        }
        const Relation &a = lhs.asRel(_n);
        const Relation &b = rhs.asRel(_n);
        if (expr.kind == Expr::Kind::Union)
            return Value::rel(a | b);
        if (expr.kind == Expr::Kind::Inter)
            return Value::rel(a & b);
        return Value::rel(a - b);
      }

      case Expr::Kind::Seq: {
        Value lv = eval(*expr.lhs);
        Value rv = eval(*expr.rhs);
        return Value::rel(lv.asRel(_n).seq(rv.asRel(_n)));
      }

      case Expr::Kind::Closure: {
        Value v = eval(*expr.lhs);
        return Value::rel(v.asRel(_n).transitiveClosure());
      }

      case Expr::Kind::RtClosure: {
        Value v = eval(*expr.lhs);
        return Value::rel(v.asRel(_n).reflexiveTransitiveClosure());
      }

      case Expr::Kind::Optional: {
        Value v = eval(*expr.lhs);
        return Value::rel(v.asRel(_n).optional());
      }

      case Expr::Kind::Inverse: {
        Value v = eval(*expr.lhs);
        return Value::rel(v.asRel(_n).inverse());
      }

      case Expr::Kind::Complement: {
        Value v = eval(*expr.lhs);
        if (v.kind() == Value::Kind::Set ||
                v.kind() == Value::Kind::Zero) {
            return Value::set(v.asSet(_n).complement());
        }
        fatal("cat: '~' on a relation is unsupported (line " +
              std::to_string(expr.line) + ")");
      }

      case Expr::Kind::Bracket: {
        Value v = eval(*expr.lhs);
        return Value::rel(Relation::identity(v.asSet(_n)));
      }

      case Expr::Kind::If:
        return evalCond(*expr.cond) ? eval(*expr.lhs) : eval(*expr.rhs);

      case Expr::Kind::App: {
        Value arg = eval(*expr.lhs);
        if (expr.name == "range")
            return Value::set(arg.asRel(_n).range());
        if (expr.name == "domain")
            return Value::set(arg.asRel(_n).domain());
        fatal("cat: unknown function '" + expr.name + "' at line " +
              std::to_string(expr.line));
      }
    }
    panic("unhandled cat expression kind");
}

void
Evaluator::evaluateStatements(const std::vector<Statement> &statements,
                              EvalResult &result)
{
    for (const Statement &stmt : statements) {
        switch (stmt.kind) {
          case Statement::Kind::Show:
            break;  // display-only in herd; nothing to do
          case Statement::Kind::Flag: {
            // Diagnostic check: evaluate, warn on trigger, never fail.
            Value v = eval(*stmt.checkExpr);
            bool is_empty = v.kind() == Value::Kind::Set
                ? v.asSet(_n).empty() : v.asRel(_n).empty();
            bool triggered = stmt.flagNegated ? !is_empty : is_empty;
            if (triggered) {
                warn("cat flag triggered: " +
                     (stmt.checkName.empty() ? "<anonymous>"
                                             : stmt.checkName));
            }
            break;
          }
          case Statement::Kind::Include: {
            if (!_resolver)
                fatal("cat: include \"" + stmt.includePath +
                      "\" but no resolver configured");
            CatFile included = parseCat(_resolver(stmt.includePath));
            evaluateStatements(included.statements, result);
            break;
          }
          case Statement::Kind::Let:
            if (!stmt.recursive) {
                for (const auto &[name, expr] : stmt.bindings)
                    _env[name] = eval(*expr);
                break;
            }
            {
                // 'let rec': least-fixpoint (Kleene) iteration from the
                // empty relation. Union-based recursive definitions, the
                // cat idiom, converge within n^2 steps; we bound harder.
                for (const auto &[name, expr] : stmt.bindings)
                    _env[name] = Value::zero();
                bool changed = true;
                int rounds = 0;
                while (changed) {
                    if (++rounds > 256)
                        fatal("cat: 'let rec' did not converge at line " +
                              std::to_string(stmt.line));
                    changed = false;
                    for (const auto &[name, expr] : stmt.bindings) {
                        Value next = eval(*expr);
                        const Value &prev = _env[name];
                        bool same;
                        if (next.kind() == Value::Kind::Set ||
                                prev.kind() == Value::Kind::Set) {
                            same = next.asSet(_n) == prev.asSet(_n);
                        } else {
                            same = next.asRel(_n) == prev.asRel(_n);
                        }
                        if (!same) {
                            _env[name] = std::move(next);
                            changed = true;
                        }
                    }
                }
            }
            break;
          case Statement::Kind::Check: {
            CheckOutcome outcome;
            outcome.name = stmt.checkName.empty()
                ? ("check@" + std::to_string(stmt.line)) : stmt.checkName;
            outcome.kind = stmt.check;
            switch (stmt.check) {
              case Statement::CheckKind::Acyclic: {
                Value v = eval(*stmt.checkExpr);
                const Relation &r = v.asRel(_n);
                outcome.cycle = r.findCycle();
                outcome.passed = !outcome.cycle.has_value();
                break;
              }
              case Statement::CheckKind::Irreflexive: {
                Value v = eval(*stmt.checkExpr);
                const Relation &r = v.asRel(_n);
                outcome.passed = r.irreflexive();
                if (!outcome.passed) {
                    // Report some reflexive event as a 1-cycle.
                    for (EventId e = 0; e < _n; ++e) {
                        if (r.contains(e, e)) {
                            outcome.cycle = std::vector<EventId>{e};
                            break;
                        }
                    }
                }
                break;
              }
              case Statement::CheckKind::Empty: {
                Value v = eval(*stmt.checkExpr);
                if (v.kind() == Value::Kind::Set)
                    outcome.passed = v.asSet(_n).empty();
                else
                    outcome.passed = v.asRel(_n).empty();
                break;
              }
            }
            if (!outcome.passed)
                result.consistent = false;
            result.checks.push_back(std::move(outcome));
            break;
          }
        }
    }
}

EvalResult
Evaluator::evaluateFile(const CatFile &file)
{
    EvalResult result;
    evaluateStatements(file.statements, result);
    return result;
}

const Value &
Evaluator::binding(const std::string &name) const
{
    auto it = _env.find(name);
    if (it == _env.end())
        fatal("cat: no binding named '" + name + "'");
    return it->second;
}

} // namespace rex::cat
