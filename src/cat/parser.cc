#include "cat/parser.hh"

#include "base/logging.hh"
#include "cat/lexer.hh"

namespace rex::cat {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &source)
        : _tokens(tokenize(source))
    {}

    CatFile
    parseFile()
    {
        CatFile file;
        // Optional leading string: the model name.
        if (peek().kind == TokKind::String) {
            file.modelName = next().text;
        }
        while (peek().kind != TokKind::End)
            file.statements.push_back(parseStatement());
        return file;
    }

  private:
    const Tok &peek(std::size_t ahead = 0) const
    {
        std::size_t index = _pos + ahead;
        if (index >= _tokens.size())
            index = _tokens.size() - 1;
        return _tokens[index];
    }

    const Tok &
    next()
    {
        const Tok &t = _tokens[_pos];
        if (t.kind != TokKind::End)
            ++_pos;
        return t;
    }

    bool
    tryConsume(TokKind kind)
    {
        if (peek().kind == kind) {
            next();
            return true;
        }
        return false;
    }

    void
    expect(TokKind kind, const char *what)
    {
        if (!tryConsume(kind))
            fail(std::string("expected ") + what);
    }

    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("cat parse error at line " + std::to_string(peek().line) +
              ": " + why + " (got '" + peek().text + "')");
    }

    Statement
    parseStatement()
    {
        Statement stmt;
        stmt.line = peek().line;
        switch (peek().kind) {
          case TokKind::KwShow:
          case TokKind::KwUnshow: {
            // herd display directives: accept "show expr (as name)?"
            // with comma-separated items, and ignore them.
            next();
            do {
                parseExpr();
                if (tryConsume(TokKind::KwAs)) {
                    if (peek().kind != TokKind::Ident)
                        fail("expected name after 'as'");
                    next();
                }
            } while (tryConsume(TokKind::Comma));
            stmt.kind = Statement::Kind::Show;
            return stmt;
          }
          case TokKind::KwFlag: {
            // "flag ~empty expr as name": a herd diagnostic check; we
            // evaluate it like 'empty' but only warn (never fail).
            next();
            bool negated = tryConsume(TokKind::Tilde);
            if (peek().kind != TokKind::KwEmpty)
                fail("expected 'empty' after 'flag'");
            next();
            stmt.kind = Statement::Kind::Flag;
            stmt.flagNegated = negated;
            stmt.checkExpr = parseExpr();
            if (tryConsume(TokKind::KwAs)) {
                if (peek().kind != TokKind::Ident)
                    fail("expected name after 'as'");
                stmt.checkName = next().text;
            }
            return stmt;
          }
          case TokKind::KwInclude: {
            next();
            if (peek().kind != TokKind::String)
                fail("expected include path string");
            stmt.kind = Statement::Kind::Include;
            stmt.includePath = next().text;
            return stmt;
          }
          case TokKind::KwLet: {
            next();
            stmt.kind = Statement::Kind::Let;
            stmt.recursive = tryConsume(TokKind::KwRec);
            do {
                if (peek().kind != TokKind::Ident)
                    fail("expected binding name");
                std::string name = next().text;
                expect(TokKind::Equals, "'='");
                stmt.bindings.emplace_back(name, parseExpr());
            } while (tryConsume(TokKind::KwAnd));
            return stmt;
          }
          case TokKind::KwAcyclic:
          case TokKind::KwIrreflexive:
          case TokKind::KwEmpty: {
            TokKind kw = next().kind;
            stmt.kind = Statement::Kind::Check;
            stmt.check = kw == TokKind::KwAcyclic
                ? Statement::CheckKind::Acyclic
                : kw == TokKind::KwIrreflexive
                    ? Statement::CheckKind::Irreflexive
                    : Statement::CheckKind::Empty;
            stmt.checkExpr = parseExpr();
            if (tryConsume(TokKind::KwAs)) {
                if (peek().kind != TokKind::Ident)
                    fail("expected check name after 'as'");
                stmt.checkName = next().text;
            }
            return stmt;
          }
          default:
            fail("expected statement");
        }
    }

    // expr := diffExpr ('|' diffExpr)*
    ExprPtr
    parseExpr()
    {
        ExprPtr lhs = parseDiff();
        while (tryConsume(TokKind::Pipe)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Union;
            node->line = peek().line;
            node->lhs = std::move(lhs);
            node->rhs = parseDiff();
            lhs = std::move(node);
        }
        return lhs;
    }

    // diffExpr := interExpr ('\' interExpr)*
    ExprPtr
    parseDiff()
    {
        ExprPtr lhs = parseInter();
        while (tryConsume(TokKind::Backslash)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Diff;
            node->line = peek().line;
            node->lhs = std::move(lhs);
            node->rhs = parseInter();
            lhs = std::move(node);
        }
        return lhs;
    }

    // interExpr := seqExpr ('&' seqExpr)*
    ExprPtr
    parseInter()
    {
        ExprPtr lhs = parseSeq();
        while (tryConsume(TokKind::Amp)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Inter;
            node->line = peek().line;
            node->lhs = std::move(lhs);
            node->rhs = parseSeq();
            lhs = std::move(node);
        }
        return lhs;
    }

    // seqExpr := unary (';' unary)*
    ExprPtr
    parseSeq()
    {
        ExprPtr lhs = parseUnary();
        while (tryConsume(TokKind::Semi)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Seq;
            node->line = peek().line;
            node->lhs = std::move(lhs);
            node->rhs = parseUnary();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        if (tryConsume(TokKind::Tilde)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Complement;
            node->line = peek().line;
            node->lhs = parseUnary();
            return node;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr expr = parseAtom();
        while (true) {
            Expr::Kind kind;
            if (tryConsume(TokKind::Plus)) {
                kind = Expr::Kind::Closure;
            } else if (tryConsume(TokKind::Star)) {
                kind = Expr::Kind::RtClosure;
            } else if (tryConsume(TokKind::Question)) {
                kind = Expr::Kind::Optional;
            } else if (tryConsume(TokKind::Inverse)) {
                kind = Expr::Kind::Inverse;
            } else {
                break;
            }
            auto node = std::make_unique<Expr>();
            node->kind = kind;
            node->line = peek().line;
            node->lhs = std::move(expr);
            expr = std::move(node);
        }
        return expr;
    }

    // Flag conditions: atom := String | ~atom | (cond);
    // cond := atom (('&' | '|') atom)*
    FlagCondPtr
    parseFlagAtom()
    {
        if (tryConsume(TokKind::Tilde)) {
            auto node = std::make_unique<FlagCond>();
            node->kind = FlagCond::Kind::Not;
            node->lhs = parseFlagAtom();
            return node;
        }
        if (tryConsume(TokKind::LParen)) {
            FlagCondPtr inner = parseFlagCond();
            expect(TokKind::RParen, "')'");
            return inner;
        }
        if (peek().kind != TokKind::String)
            fail("expected flag string in condition");
        auto node = std::make_unique<FlagCond>();
        node->kind = FlagCond::Kind::Flag;
        node->flag = next().text;
        return node;
    }

    FlagCondPtr
    parseFlagCond()
    {
        FlagCondPtr lhs = parseFlagAtom();
        while (peek().kind == TokKind::Amp ||
               peek().kind == TokKind::Pipe) {
            bool is_and = next().kind == TokKind::Amp;
            auto node = std::make_unique<FlagCond>();
            node->kind = is_and ? FlagCond::Kind::And : FlagCond::Kind::Or;
            node->lhs = std::move(lhs);
            node->rhs = parseFlagAtom();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr
    parseAtom()
    {
        auto node = std::make_unique<Expr>();
        node->line = peek().line;
        switch (peek().kind) {
          case TokKind::Zero:
            next();
            node->kind = Expr::Kind::Zero;
            return node;
          case TokKind::LParen: {
            next();
            ExprPtr inner = parseExpr();
            expect(TokKind::RParen, "')'");
            return inner;
          }
          case TokKind::LBracket: {
            next();
            node->kind = Expr::Kind::Bracket;
            node->lhs = parseExpr();
            expect(TokKind::RBracket, "']'");
            return node;
          }
          case TokKind::KwIf: {
            next();
            node->kind = Expr::Kind::If;
            node->cond = parseFlagCond();
            expect(TokKind::KwThen, "'then'");
            node->lhs = parseSeq();
            expect(TokKind::KwElse, "'else'");
            node->rhs = parseSeq();
            return node;
          }
          case TokKind::Ident: {
            std::string name = next().text;
            if (tryConsume(TokKind::LParen)) {
                node->kind = Expr::Kind::App;
                node->name = name;
                node->lhs = parseExpr();
                expect(TokKind::RParen, "')'");
                return node;
            }
            node->kind = Expr::Kind::Name;
            node->name = name;
            return node;
          }
          default:
            fail("expected expression");
        }
    }

    std::vector<Tok> _tokens;
    std::size_t _pos = 0;
};

} // namespace

CatFile
parseCat(const std::string &source)
{
    Parser parser(source);
    return parser.parseFile();
}

} // namespace rex::cat
