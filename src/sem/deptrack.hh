/**
 * @file
 * Register dependency (taint) tracking for the thread semantics.
 *
 * The axiomatic model's addr/data/ctrl relations are *syntactic* register
 * dataflow: an event depends on a read when the value it uses was computed
 * (through registers) from that read's result. We track, per register, the
 * set of read events the register's current value depends on, as a bitmask
 * of local (per-thread) event indices.
 */

#ifndef REX_SEM_DEPTRACK_HH
#define REX_SEM_DEPTRACK_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace rex::sem {

/** Set of local event indices (one thread emits < 64 events). */
using Taint = std::uint64_t;

/** Maximum events a single thread trace may contain. */
inline constexpr int kMaxThreadEvents = 64;

/** Taint containing exactly local event @p index. */
inline Taint
taintOf(int index)
{
    return Taint{1} << index;
}

/**
 * Append one dependency edge (from each read in @p sources to event
 * @p target) to @p edges.
 */
void addDepEdges(std::vector<std::pair<int, int>> &edges, Taint sources,
                 int target);

} // namespace rex::sem

#endif // REX_SEM_DEPTRACK_HH
