/**
 * @file
 * Exception-entry bookkeeping shared by the thread semantics and the
 * operational simulator: syndrome values, preferred return addresses, and
 * the GICv3 SGI1R register encoding.
 */

#ifndef REX_SEM_EXCEPTION_HH
#define REX_SEM_EXCEPTION_HH

#include <cstdint>

#include "events/event.hh"

namespace rex::sem {

/** ESR_EL1.EC syndrome class codes (subset). */
enum class SyndromeClass : std::uint64_t {
    Svc = 0x15,
    DataAbortLowerEl = 0x24,
    DataAbortSameEl = 0x25,
    PcAlignment = 0x22,
    SError = 0x2f,
};

/** The ESR value written on taking a synchronous exception. */
std::uint64_t syndromeFor(ExceptionClass cls, std::uint64_t iss);

/**
 * Preferred return address (§2.1) for an exception taken at @p pc:
 *  - SVC: the instruction after the SVC;
 *  - faults: the faulting instruction itself (so a handler that maps the
 *    page can resume it);
 *  - interrupts: the first instruction not yet architecturally executed.
 */
std::uint64_t preferredReturn(ExceptionClass cls, std::uint64_t pc);

/** Decoded fields of a write to ICC_SGI1R_EL1 (GICv3 §12.11.16). */
struct SgiRequest {
    std::uint32_t intid = 0;       //!< bits [27:24]
    bool broadcast = false;        //!< IRM, bit 40: all PEs but self
    std::uint16_t targetList = 0;  //!< bits [15:0]

    /**
     * Target-thread bitmask for a test with @p num_threads threads, sent
     * from thread @p sender. Thread i corresponds to target-list bit i
     * (we identify PEs with litmus threads; affinity routing collapses).
     */
    std::uint64_t targetMask(std::size_t num_threads,
                             std::uint32_t sender) const;
};

/** Decode an ICC_SGI1R_EL1 value. */
SgiRequest decodeSgi1r(std::uint64_t value);

} // namespace rex::sem

#endif // REX_SEM_EXCEPTION_HH
