#include "sem/exception.hh"

namespace rex::sem {

std::uint64_t
syndromeFor(ExceptionClass cls, std::uint64_t iss)
{
    std::uint64_t ec;
    switch (cls) {
      case ExceptionClass::Svc:
        ec = static_cast<std::uint64_t>(SyndromeClass::Svc);
        break;
      case ExceptionClass::DataAbortTranslation:
        ec = static_cast<std::uint64_t>(SyndromeClass::DataAbortSameEl);
        break;
      case ExceptionClass::PcAlignment:
        ec = static_cast<std::uint64_t>(SyndromeClass::PcAlignment);
        break;
      case ExceptionClass::SyncExternalAbort:
        ec = static_cast<std::uint64_t>(SyndromeClass::SError);
        break;
      default:
        ec = 0;
        break;
    }
    return (ec << 26) | (iss & 0x1ffffff);
}

std::uint64_t
preferredReturn(ExceptionClass cls, std::uint64_t pc)
{
    switch (cls) {
      case ExceptionClass::Svc:
        return pc + 1;
      default:
        return pc;
    }
}

std::uint64_t
SgiRequest::targetMask(std::size_t num_threads, std::uint32_t sender) const
{
    std::uint64_t mask = 0;
    if (broadcast) {
        for (std::size_t t = 0; t < num_threads; ++t) {
            if (t != sender)
                mask |= std::uint64_t{1} << t;
        }
    } else {
        for (std::size_t t = 0; t < num_threads && t < 16; ++t) {
            if (targetList & (std::uint16_t{1} << t))
                mask |= std::uint64_t{1} << t;
        }
    }
    return mask;
}

SgiRequest
decodeSgi1r(std::uint64_t value)
{
    SgiRequest req;
    req.intid = static_cast<std::uint32_t>((value >> 24) & 0xF);
    req.broadcast = (value >> 40) & 1;
    req.targetList = static_cast<std::uint16_t>(value & 0xFFFF);
    return req;
}

} // namespace rex::sem
