#include "sem/deptrack.hh"

namespace rex::sem {

void
addDepEdges(std::vector<std::pair<int, int>> &edges, Taint sources,
            int target)
{
    for (int i = 0; i < kMaxThreadEvents; ++i) {
        if (sources & taintOf(i))
            edges.emplace_back(i, target);
    }
}

} // namespace rex::sem
