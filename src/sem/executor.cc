#include "sem/executor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strings.hh"
#include "sem/exception.hh"

namespace rex::sem {

using isa::Instruction;
using isa::Opcode;
using isa::RegId;
using isa::Sysreg;

ValueDomain::ValueDomain(const LitmusTest &test)
{
    locValues.resize(test.locations.size());
    for (LocationId loc = 0; loc < test.locations.size(); ++loc)
        locValues[loc].push_back(test.initValues[loc]);
}

bool
ValueDomain::addLocValue(LocationId loc, std::uint64_t value)
{
    auto &values = locValues[loc];
    auto it = std::lower_bound(values.begin(), values.end(), value);
    if (it != values.end() && *it == value)
        return false;
    values.insert(it, value);
    return true;
}

bool
ValueDomain::addIntid(std::uint32_t intid)
{
    auto it = std::lower_bound(sgiIntids.begin(), sgiIntids.end(), intid);
    if (it != sgiIntids.end() && *it == intid)
        return false;
    sgiIntids.insert(it, intid);
    return true;
}

/**
 * The full interpreter state of one thread during trace enumeration.
 * Copied at each nondeterministic fork (small: fixed arrays plus the
 * trace built so far).
 */
struct ThreadExecutor::ExecState {
    std::size_t pc = 0;
    bool inHandler = false;
    std::size_t handlerPc = 0;
    bool done = false;

    std::array<std::uint64_t, isa::kNumRegs> regs{};
    std::array<Taint, isa::kNumRegs> taint{};
    std::array<std::uint64_t, isa::kNumSysregs> sysregs{};
    std::array<Taint, isa::kNumSysregs> sysregTaint{};

    /** Reads feeding any branch executed so far. */
    Taint ctrlTaint = 0;

    /** NZCV state, kept as the last comparison's operands. */
    std::int64_t cmpLhs = 0;
    std::int64_t cmpRhs = 0;
    Taint flagsTaint = 0;

    /** A context-controlling system register (VBAR/SCTLR) was written
     *  and no context synchronisation has happened since. */
    bool pendingContextChange = false;

    /** PSTATE.I: asynchronous interrupts masked. */
    bool masked = false;
    /** Mask state saved on exception entry, restored by ERET. */
    bool savedMasked = false;

    bool interruptTaken = false;
    std::uint32_t activeIntid = 0;

    /** Outstanding exclusive (location, load event index), if any. */
    bool exclusiveValid = false;
    LocationId exclusiveLoc = 0;
    int exclusiveEvent = 0;

    int instrCount = 0;
    int steps = 0;

    ThreadTrace trace;
};

namespace {

std::size_t
sysregIndex(Sysreg reg)
{
    return static_cast<std::size_t>(reg);
}

} // namespace

ThreadExecutor::ThreadExecutor(const LitmusTest &test, ThreadId tid,
                               const ValueDomain &domain)
    : _test(test), _thread(test.threads[static_cast<std::size_t>(tid)]),
      _tid(tid), _domain(domain)
{
}

std::vector<ThreadTrace>
ThreadExecutor::enumerate()
{
    _results.clear();

    // Build the list of interrupt plans.
    struct Plan { int point; std::uint32_t intid; bool witness; };
    std::vector<Plan> plans;

    if (_thread.interruptAt) {
        // Mandatory externally-pended interrupt at the label.
        int point = static_cast<int>(
            _thread.program.labelIndex(*_thread.interruptAt));
        plans.push_back({point, _thread.interruptIntid, false});
    } else if (_thread.sgiReceiver && !_domain.sgiIntids.empty()) {
        // Maybe no interrupt arrives in time...
        plans.push_back({-1, 0, false});
        // ... or one arrives before any program point.
        for (std::size_t p = 0; p <= _thread.program.code.size(); ++p) {
            for (std::uint32_t intid : _domain.sgiIntids)
                plans.push_back({static_cast<int>(p), intid, true});
        }
    } else {
        plans.push_back({-1, 0, false});
    }

    for (const Plan &plan : plans) {
        _firePoint = plan.point;
        _fireIntid = plan.intid;
        _fireNeedsWitness = plan.witness;

        ExecState init;
        init.regs = _thread.initRegs;
        init.masked = _thread.initialMasked;
        run(init);
    }
    return _results;
}

void
ThreadExecutor::run(ExecState state)
{
    while (!state.done) {
        if (++state.steps > 512) {
            fatal("thread " + std::to_string(_tid) + " of test " +
                  _test.name + " did not terminate (loop in litmus code?)");
        }
        step(state);
    }
}

int
ThreadExecutor::emit(ExecState &state, Event event, Taint ctrl_sources)
{
    int index = static_cast<int>(state.trace.events.size());
    rexAssert(index < kMaxThreadEvents, "thread trace too long");
    event.tid = _tid;
    event.poIndex = index;
    event.instrIndex = state.instrCount;
    state.trace.events.push_back(event);
    addDepEdges(state.trace.ctrl, ctrl_sources, index);
    return index;
}

void
ThreadExecutor::finish(ExecState &state)
{
    state.done = true;
    state.trace.finalRegs = state.regs;
    _results.push_back(std::move(state.trace));
}

void
ThreadExecutor::enterHandler(ExecState &state, std::uint64_t return_pc)
{
    rexAssert(!state.inHandler, "nested exception in litmus thread");
    if (state.pendingContextChange) {
        // Taking an exception with an un-synchronised VBAR/SCTLR write
        // outstanding: constrained unpredictable (s1.2). Flag it; the
        // exception still vectors to the test's handler.
        state.trace.constrainedUnpredictable = true;
        state.pendingContextChange = false;
    }
    if (_thread.handler.code.empty()) {
        fatal("thread " + std::to_string(_tid) + " of test " + _test.name +
              " takes an exception but has no handler");
    }
    state.sysregs[sysregIndex(Sysreg::ELR_EL1)] = return_pc;
    state.sysregTaint[sysregIndex(Sysreg::ELR_EL1)] = 0;
    state.sysregs[sysregIndex(Sysreg::SPSR_EL1)] = state.masked ? 1 : 0;
    state.sysregTaint[sysregIndex(Sysreg::SPSR_EL1)] = 0;
    state.savedMasked = state.masked;
    state.masked = true;
    state.inHandler = true;
    state.handlerPc = 0;
}

void
ThreadExecutor::takeSyncException(ExecState &state, ExceptionClass cls,
                                  std::uint64_t return_pc)
{
    Event te;
    te.kind = EventKind::TakeException;
    te.exceptionClass = cls;
    emit(state, te, state.ctrlTaint);
    state.sysregs[sysregIndex(Sysreg::ESR_EL1)] = syndromeFor(cls, 0);
    state.sysregTaint[sysregIndex(Sysreg::ESR_EL1)] = 0;
    enterHandler(state, return_pc);
}

void
ThreadExecutor::takeInterrupt(ExecState &state)
{
    Event ti;
    ti.kind = EventKind::TakeInterrupt;
    ti.intid = _fireIntid;
    ti.sgiDelivered = _fireNeedsWitness;
    emit(state, ti, state.ctrlTaint);
    state.interruptTaken = true;
    state.activeIntid = _fireIntid;
    enterHandler(state, state.pc);
}

void
ThreadExecutor::step(ExecState &state)
{
    if (!state.inHandler) {
        // Pended interrupt fires before the instruction at _firePoint
        // (or at program end). Masked delivery points are invalid plans:
        // the equivalent deferred delivery is enumerated as a later plan.
        if (!state.interruptTaken && _firePoint >= 0 &&
                state.pc == static_cast<std::size_t>(_firePoint)) {
            if (state.masked && !_thread.interruptAt) {
                state.done = true;  // prune: plan not deliverable
                return;
            }
            ++state.instrCount;
            takeInterrupt(state);
            return;
        }
        if (state.pc >= _thread.program.code.size()) {
            finish(state);
            return;
        }
        const Instruction &inst = _thread.program.code[state.pc];
        ++state.instrCount;
        execute(state, inst, false);
        return;
    }

    if (state.handlerPc >= _thread.handler.code.size()) {
        // Handler fell off the end without ERET: thread terminates here
        // (the idiom the paper's fault/interrupt tests use).
        finish(state);
        return;
    }
    const Instruction &inst = _thread.handler.code[state.handlerPc];
    ++state.instrCount;
    execute(state, inst, true);
}

void
ThreadExecutor::executeMemory(ExecState &state, const Instruction &inst)
{
    // Effective address.
    std::uint64_t address = state.regs[inst.rn];
    Taint addr_taint = state.taint[inst.rn];
    switch (inst.mode) {
      case isa::AddrMode::BaseReg:
        address += state.regs[inst.rm];
        addr_taint |= state.taint[inst.rm];
        break;
      case isa::AddrMode::BaseImm:
      case isa::AddrMode::PreIndex:
        address += static_cast<std::uint64_t>(inst.imm);
        break;
      default:
        break;
    }

    auto loc = addressToLocation(address, _test.locations.size());
    std::uint64_t cur_pc = state.inHandler ? state.handlerPc : state.pc;

    if (!loc) {
        // Translation fault. Per §3.4, the writeback register of a
        // faulting post/pre-index access appears unchanged to instances
        // after the exception boundary, so no writeback happens here.
        // A fault on the second element of a pair leaves the first
        // element's effects architecturally UNKNOWN (s6): this trace
        // models the performed outcome, flagged.
        if (inst.pairSecond)
            state.trace.unknownSideEffects = true;
        Event te;
        te.kind = EventKind::TakeException;
        te.exceptionClass = ExceptionClass::DataAbortTranslation;
        int idx = emit(state, te, state.ctrlTaint);
        addDepEdges(state.trace.addr, addr_taint, idx);
        state.sysregs[sysregIndex(Sysreg::ESR_EL1)] =
            syndromeFor(ExceptionClass::DataAbortTranslation, 0);
        state.sysregTaint[sysregIndex(Sysreg::ESR_EL1)] = 0;
        state.sysregs[sysregIndex(Sysreg::FAR_EL1)] = address;
        state.sysregTaint[sysregIndex(Sysreg::FAR_EL1)] = addr_taint;
        enterHandler(state, preferredReturn(
            ExceptionClass::DataAbortTranslation, cur_pc));
        return;
    }

    auto advance = [&]() {
        // Writeback for post/pre-index succeeds only on non-faulting
        // accesses (handled above).
        if (inst.mode == isa::AddrMode::PostIndex) {
            state.regs[inst.rn] += static_cast<std::uint64_t>(inst.imm);
        } else if (inst.mode == isa::AddrMode::PreIndex) {
            state.regs[inst.rn] = address;
        }
        if (state.inHandler)
            ++state.handlerPc;
        else
            ++state.pc;
    };

    if (inst.isLoad()) {
        // Fork over every candidate value of the location. Only the
        // non-last values pay for a state copy; the last value continues
        // in place (single-value domains copy nothing).
        const std::vector<std::uint64_t> &values = _domain.locValues[*loc];
        rexAssert(!values.empty(), "empty value domain");

        auto emitRead = [&](ExecState &st, std::uint64_t value) {
            Event read;
            read.kind = EventKind::ReadMem;
            read.loc = *loc;
            read.value = value;
            read.flags.acquire = inst.op == Opcode::Ldar;
            read.flags.acquirePc = inst.op == Opcode::Ldapr;
            read.flags.exclusive = inst.op == Opcode::Ldxr;
            int idx = emit(st, read, st.ctrlTaint);
            addDepEdges(st.trace.addr, addr_taint, idx);

            st.regs[inst.rd] = value;
            st.taint[inst.rd] = inst.rd == isa::kZeroReg
                ? 0 : taintOf(idx);
            if (inst.op == Opcode::Ldxr) {
                st.exclusiveValid = true;
                st.exclusiveLoc = *loc;
                st.exclusiveEvent = idx;
            }
        };

        for (std::size_t vi = 0; vi + 1 < values.size(); ++vi) {
            ExecState fork_state = state;
            emitRead(fork_state, values[vi]);
            // Run the fork to completion.
            if (fork_state.inHandler)
                ++fork_state.handlerPc;
            else
                ++fork_state.pc;
            if (inst.mode == isa::AddrMode::PostIndex) {
                fork_state.regs[inst.rn] +=
                    static_cast<std::uint64_t>(inst.imm);
            } else if (inst.mode == isa::AddrMode::PreIndex) {
                fork_state.regs[inst.rn] = address;
            }
            run(fork_state);
        }
        emitRead(state, values.back());
        advance();
        return;
    }

    // Stores.
    if (inst.op == Opcode::Stxr) {
        // Fork: the store-exclusive may fail (status 1, no write event).
        ExecState fail_state = state;
        fail_state.regs[inst.rs] = 1;
        fail_state.taint[inst.rs] = 0;
        fail_state.exclusiveValid = false;
        if (fail_state.inHandler)
            ++fail_state.handlerPc;
        else
            ++fail_state.pc;
        run(fail_state);

        Event write;
        write.kind = EventKind::WriteMem;
        write.loc = *loc;
        write.value = state.regs[inst.rd];
        write.flags.exclusive = true;
        int idx = emit(state, write, state.ctrlTaint);
        addDepEdges(state.trace.addr, addr_taint, idx);
        addDepEdges(state.trace.data, state.taint[inst.rd], idx);
        if (state.exclusiveValid && state.exclusiveLoc == *loc)
            state.trace.rmw.emplace_back(state.exclusiveEvent, idx);
        state.exclusiveValid = false;
        state.regs[inst.rs] = 0;
        state.taint[inst.rs] = 0;
        advance();
        return;
    }

    Event write;
    write.kind = EventKind::WriteMem;
    write.loc = *loc;
    write.value = state.regs[inst.rd];
    write.flags.release = inst.op == Opcode::Stlr;
    int idx = emit(state, write, state.ctrlTaint);
    addDepEdges(state.trace.addr, addr_taint, idx);
    addDepEdges(state.trace.data, state.taint[inst.rd], idx);
    advance();
}

void
ThreadExecutor::execute(ExecState &state, const Instruction &inst,
                        bool in_handler)
{
    auto advance = [&]() {
        if (in_handler)
            ++state.handlerPc;
        else
            ++state.pc;
    };

    const isa::Program &prog = in_handler ? _thread.handler
                                          : _thread.program;

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Label:
        advance();
        return;

      case Opcode::MovImm:
        state.regs[inst.rd] =
            static_cast<std::uint64_t>(inst.imm) << inst.shift;
        state.taint[inst.rd] = 0;
        advance();
        return;

      case Opcode::MovReg:
        state.regs[inst.rd] = state.regs[inst.rn];
        state.taint[inst.rd] = state.taint[inst.rn];
        advance();
        return;

      case Opcode::Alu: {
        std::uint64_t lhs = state.regs[inst.rn];
        std::uint64_t rhs = inst.aluImmediate
            ? static_cast<std::uint64_t>(inst.imm) : state.regs[inst.rm];
        std::uint64_t result = 0;
        switch (inst.alu) {
          case isa::AluOp::Add: result = lhs + rhs; break;
          case isa::AluOp::Sub: result = lhs - rhs; break;
          case isa::AluOp::Eor: result = lhs ^ rhs; break;
          case isa::AluOp::And: result = lhs & rhs; break;
          case isa::AluOp::Orr: result = lhs | rhs; break;
        }
        state.regs[inst.rd] = result;
        state.taint[inst.rd] = state.taint[inst.rn] |
            (inst.aluImmediate ? 0 : state.taint[inst.rm]);
        advance();
        return;
      }

      case Opcode::Ldr:
      case Opcode::Str:
      case Opcode::Ldar:
      case Opcode::Ldapr:
      case Opcode::Stlr:
      case Opcode::Ldxr:
      case Opcode::Stxr:
        executeMemory(state, inst);
        return;

      case Opcode::Ldp:
      case Opcode::Stp:
        panic("pair access not expanded by the assembler");

      case Opcode::Dmb:
      case Opcode::Dsb:
      case Opcode::Isb: {
        Event barrier;
        barrier.kind = EventKind::Barrier;
        barrier.barrier = inst.barrier;
        emit(state, barrier, state.ctrlTaint);
        if (inst.op == Opcode::Isb)
            state.pendingContextChange = false;
        advance();
        return;
      }

      case Opcode::Cmp:
        state.cmpLhs = static_cast<std::int64_t>(state.regs[inst.rn]);
        state.cmpRhs = inst.aluImmediate
            ? inst.imm : static_cast<std::int64_t>(state.regs[inst.rm]);
        state.flagsTaint = state.taint[inst.rn] |
            (inst.aluImmediate ? 0 : state.taint[inst.rm]);
        advance();
        return;

      case Opcode::BCond: {
        state.ctrlTaint |= state.flagsTaint;
        bool taken = isa::condHoldsFor(inst.cond, state.cmpLhs,
                                       state.cmpRhs);
        if (taken) {
            std::size_t target = prog.labelIndex(inst.label);
            if (in_handler)
                state.handlerPc = target;
            else
                state.pc = target;
        } else {
            advance();
        }
        return;
      }

      case Opcode::Cbz:
      case Opcode::Cbnz: {
        state.ctrlTaint |= state.taint[inst.rd];
        bool zero = state.regs[inst.rd] == 0;
        bool taken = inst.op == Opcode::Cbz ? zero : !zero;
        if (taken) {
            std::size_t target = prog.labelIndex(inst.label);
            if (in_handler)
                state.handlerPc = target;
            else
                state.pc = target;
        } else {
            advance();
        }
        return;
      }

      case Opcode::B: {
        std::size_t target = prog.labelIndex(inst.label);
        if (in_handler)
            state.handlerPc = target;
        else
            state.pc = target;
        return;
      }

      case Opcode::Svc: {
        rexAssert(!in_handler, "SVC inside handler unsupported");
        std::uint64_t ret = preferredReturn(ExceptionClass::Svc, state.pc);
        takeSyncException(state, ExceptionClass::Svc, ret);
        return;
      }

      case Opcode::Eret: {
        if (!in_handler)
            fatal("ERET outside handler in test " + _test.name);
        Event eret;
        eret.kind = EventKind::ExceptionReturn;
        int idx = emit(state, eret, state.ctrlTaint);
        // ERET reads ELR: dependencies into the ELR are preserved
        // (§3.2.5), so record them as register-data dependencies.
        addDepEdges(state.trace.data,
                    state.sysregTaint[sysregIndex(Sysreg::ELR_EL1)], idx);
        std::uint64_t target =
            state.sysregs[sysregIndex(Sysreg::ELR_EL1)];
        if (target > _thread.program.code.size()) {
            fatal("ERET to bad address in test " + _test.name);
        }
        state.inHandler = false;
        state.pc = static_cast<std::size_t>(target);
        state.masked = state.savedMasked;
        return;
      }

      case Opcode::Mrs: {
        std::size_t sri = sysregIndex(inst.sysreg);
        Event mrs;
        mrs.kind = EventKind::ReadSysreg;
        mrs.sysreg = inst.sysreg;
        std::uint64_t value;
        if (inst.sysreg == Sysreg::ICC_IAR1_EL1) {
            // Acknowledge the active interrupt: returns its INTID and has
            // a GIC effect event iio-after the register read (§7.5).
            value = state.activeIntid;
            mrs.value = value;
            int idx = emit(state, mrs, state.ctrlTaint);
            Event ack;
            ack.kind = EventKind::Acknowledge;
            ack.intid = state.activeIntid;
            int ack_idx = emit(state, ack, state.ctrlTaint);
            state.trace.iio.emplace_back(idx, ack_idx);
        } else {
            value = state.sysregs[sri];
            mrs.value = value;
            int idx = emit(state, mrs, state.ctrlTaint);
            state.taint[inst.rd] = state.sysregTaint[sri];
            state.regs[inst.rd] = value;
            (void)idx;
            advance();
            return;
        }
        state.regs[inst.rd] = value;
        state.taint[inst.rd] = 0;
        advance();
        return;
      }

      case Opcode::Msr: {
        std::size_t sri = sysregIndex(inst.sysreg);
        std::uint64_t value = state.regs[inst.rn];
        Event msr;
        msr.kind = EventKind::WriteSysreg;
        msr.sysreg = inst.sysreg;
        msr.value = value;
        int idx = emit(state, msr, state.ctrlTaint);
        addDepEdges(state.trace.data, state.taint[inst.rn], idx);

        switch (inst.sysreg) {
          case Sysreg::ICC_SGI1R_EL1: {
            SgiRequest req = decodeSgi1r(value);
            Event gen;
            gen.kind = EventKind::GenerateInterrupt;
            gen.intid = req.intid;
            gen.targetMask = req.targetMask(
                _test.threads.size(), static_cast<std::uint32_t>(_tid));
            int gen_idx = emit(state, gen, state.ctrlTaint);
            state.trace.iio.emplace_back(idx, gen_idx);
            break;
          }
          case Sysreg::ICC_EOIR1_EL1: {
            Event drop;
            drop.kind = EventKind::DropPriority;
            drop.intid = static_cast<std::uint32_t>(value & 0xFFFFFF);
            int drop_idx = emit(state, drop, state.ctrlTaint);
            state.trace.iio.emplace_back(idx, drop_idx);
            if (!_thread.eoiMode1) {
                Event deact;
                deact.kind = EventKind::Deactivate;
                deact.intid = drop.intid;
                int d_idx = emit(state, deact, state.ctrlTaint);
                state.trace.iio.emplace_back(idx, d_idx);
            }
            break;
          }
          case Sysreg::ICC_DIR_EL1: {
            Event deact;
            deact.kind = EventKind::Deactivate;
            deact.intid = static_cast<std::uint32_t>(value & 0xFFFFFF);
            int d_idx = emit(state, deact, state.ctrlTaint);
            state.trace.iio.emplace_back(idx, d_idx);
            break;
          }
          default:
            state.sysregs[sri] = value;
            state.sysregTaint[sri] = state.taint[inst.rn];
            if (inst.sysreg == Sysreg::VBAR_EL1 ||
                    inst.sysreg == Sysreg::SCTLR_EL1) {
                state.pendingContextChange = true;
            }
            break;
        }
        advance();
        return;
      }

      case Opcode::MsrDaifSet:
      case Opcode::MsrDaifClr: {
        Event msr;
        msr.kind = EventKind::WriteSysreg;
        msr.sysreg = Sysreg::DAIF;
        msr.value = static_cast<std::uint64_t>(inst.imm);
        emit(state, msr, state.ctrlTaint);
        // Bit 1 of the DAIF immediate is the IRQ mask (I).
        if (inst.imm & 0x2)
            state.masked = inst.op == Opcode::MsrDaifSet;
        advance();
        return;
      }
    }
    panic("unhandled opcode in ThreadExecutor");
}

} // namespace rex::sem
