/**
 * @file
 * Per-thread micro-operational semantics.
 *
 * The ThreadExecutor enumerates all architecturally-executed event
 * sequences of one litmus thread (§2.3.2's "sequence of FDX instances"),
 * branching over:
 *  - the value returned by each memory read (from a ValueDomain computed
 *    to fixpoint over all threads' stores);
 *  - success/failure of store-exclusives;
 *  - where a deliverable SGI is taken (each unmasked program point, or
 *    not at all), and which INTID it carries.
 *
 * Synchronous exceptions (SVC, translation faults) and pended interrupts
 * splice the handler's execution into the trace, emitting TE /
 * TakeInterrupt and ERET events per §5. Post/pre-index writebacks follow
 * the §3.4 rule: a faulting access leaves the writeback register
 * unchanged for instances after the exception boundary.
 */

#ifndef REX_SEM_EXECUTOR_HH
#define REX_SEM_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "events/event.hh"
#include "litmus/litmus.hh"
#include "sem/deptrack.hh"

namespace rex::sem {

/**
 * The domain of values reads may return, per location, plus the INTIDs of
 * SGIs the test can generate. Grown to fixpoint by the candidate
 * enumerator.
 */
struct ValueDomain {
    /** Per location: sorted distinct candidate read values. */
    std::vector<std::vector<std::uint64_t>> locValues;

    /** Distinct INTIDs of generated SGIs. */
    std::vector<std::uint32_t> sgiIntids;

    /** Initialise with each location's initial value. */
    explicit ValueDomain(const LitmusTest &test);

    /** @return true when the value was new. */
    bool addLocValue(LocationId loc, std::uint64_t value);

    /** @return true when the intid was new. */
    bool addIntid(std::uint32_t intid);
};

/**
 * One enumerated execution of one thread: its events in program order
 * plus local dependency edges (pairs of event indices).
 */
struct ThreadTrace {
    std::vector<Event> events;
    std::vector<std::pair<int, int>> addr;
    std::vector<std::pair<int, int>> data;
    std::vector<std::pair<int, int>> ctrl;
    std::vector<std::pair<int, int>> rmw;
    std::vector<std::pair<int, int>> iio;
    std::array<std::uint64_t, isa::kNumRegs> finalRegs{};

    /** True when the trace triggered 'constrained unpredictable'
     *  behaviour the paper declines to define (s1.2): here, taking an
     *  exception while an un-synchronised write to a context-controlling
     *  register (VBAR/SCTLR) is outstanding. The models do not assign it
     *  semantics; they merely flag it. */
    bool constrainedUnpredictable = false;

    /** True when a pair access (LDP/STP) faulted on its second element:
     *  the first element's effects are architecturally UNKNOWN-tinged
     *  (s6); this trace models the performed-first-element outcome and
     *  flags it. */
    bool unknownSideEffects = false;
};

/** Enumerates the traces of one litmus thread. */
class ThreadExecutor
{
  public:
    /**
     * @param test   the litmus test
     * @param tid    which thread to execute
     * @param domain candidate read values (see ValueDomain)
     */
    ThreadExecutor(const LitmusTest &test, ThreadId tid,
                   const ValueDomain &domain);

    /** All architecturally-executed traces of this thread. */
    std::vector<ThreadTrace> enumerate();

  private:
    struct ExecState;

    void run(ExecState state);
    void step(ExecState &state);
    void execute(ExecState &state, const isa::Instruction &inst,
                 bool in_handler);
    void executeMemory(ExecState &state, const isa::Instruction &inst);
    void takeSyncException(ExecState &state, ExceptionClass cls,
                           std::uint64_t return_pc);
    void takeInterrupt(ExecState &state);
    void enterHandler(ExecState &state, std::uint64_t return_pc);
    void finish(ExecState &state);

    int emit(ExecState &state, Event event, Taint ctrl_sources);

    const LitmusTest &_test;
    const LitmusThread &_thread;
    ThreadId _tid;
    const ValueDomain &_domain;

    /** Interrupt plan for the current enumeration pass: fire before
     *  instruction index _firePoint (or not at all when < 0). */
    int _firePoint = -1;
    std::uint32_t _fireIntid = 0;
    bool _fireNeedsWitness = false;

    std::vector<ThreadTrace> _results;
};

} // namespace rex::sem

#endif // REX_SEM_EXECUTOR_HH
