#include "harness/runner.hh"

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "base/strings.hh"
#include "cat/catmodel.hh"
#include "harness/table.hh"
#include "operational/runner.hh"

namespace rex::harness {

namespace {

std::string
verdictName(bool allowed)
{
    return allowed ? "Allowed" : "Forbidden";
}

std::string
condString(const LitmusTest &test)
{
    std::string out;
    for (std::size_t i = 0; i < test.finalCond.atoms.size(); ++i) {
        const CondAtom &atom = test.finalCond.atoms[i];
        if (i)
            out += " & ";
        if (atom.kind == CondAtom::Kind::Register) {
            out += format("%d:%s=%llu", atom.tid,
                          isa::regName(atom.reg).c_str(),
                          static_cast<unsigned long long>(atom.value));
        } else {
            out += format("*%s=%llu", test.locations[atom.loc].c_str(),
                          static_cast<unsigned long long>(atom.value));
        }
    }
    return out;
}

} // namespace

std::string
reproduceFigure(const LitmusTest &test, const FigureOptions &options)
{
    std::string out;
    out += "=== " + test.name + " ===\n";
    if (!test.description.empty())
        out += test.description + "\n";
    out += "final: " + condString(test) + "\n";

    CheckResult base = checkTest(test, ModelParams::base(), true);
    out += format("model (base): %s   [architectural intent: %s]\n",
                  verdictName(base.observable).c_str(),
                  verdictName(test.expectedAllowed).c_str());

    if (options.hwSim) {
        Table hw;
        hw.header({"device (simulated)", "hw-sim refs"});
        for (const op::CoreProfile &profile :
                op::CoreProfile::paperDevices()) {
            // Per-device seed so the devices' schedules differ.
            std::uint64_t seed = options.seed;
            for (char c : profile.name)
                seed = seed * 131 + static_cast<unsigned char>(c);
            op::Runner runner(profile, seed);
            op::RunStats stats = runner.run(test, options.runsPerDevice);
            hw.row({profile.name, stats.cell()});
        }
        out += hw.render();
    }

    Table params;
    params.header({"variant", "model", "expected"});
    for (const ModelParams &variant : options.variants) {
        bool allowed = isAllowed(test, variant);
        std::string expected = "-";
        if (variant.name() == "base") {
            expected = verdictName(test.expectedAllowed);
        } else if (test.variantAllowed.count(variant.name())) {
            expected = verdictName(test.variantAllowed.at(variant.name()));
        }
        params.row({variant.name(), verdictName(allowed), expected});
    }
    out += params.render();

    if (options.catCrossCheck) {
        const cat::CatModel &model = cat::CatModel::shipped();
        bool agree = true;
        CandidateEnumerator enumerator(test);
        enumerator.forEach([&](CandidateExecution &cand) {
            for (const ModelParams &variant : options.variants) {
                if (checkConsistent(cand, variant).consistent !=
                        model.check(cand, variant).consistent) {
                    agree = false;
                    return false;
                }
            }
            return true;
        });
        out += format("cat-vs-native cross-check: %s\n",
                      agree ? "agree" : "DISAGREE");
    }
    return out;
}

std::string
suiteMatrix(const std::vector<const LitmusTest *> &tests)
{
    Table table;
    table.header({"test", "expected", "base", "ExS", "SEA_R", "SEA_W",
                  "SEA_RW", "ok"});
    std::size_t mismatches = 0;
    for (const LitmusTest *test : tests) {
        std::vector<std::string> row;
        row.push_back(test->name);
        row.push_back(test->expectedAllowed ? "A" : "F");
        bool ok = true;
        for (const ModelParams &variant : ModelParams::paperVariants()) {
            bool allowed = isAllowed(*test, variant);
            row.push_back(allowed ? "A" : "F");
            const std::string name = variant.name();
            bool expected = name == "base"
                ? test->expectedAllowed
                : (test->variantAllowed.count(name)
                       ? test->variantAllowed.at(name)
                       : allowed);
            if (allowed != expected)
                ok = false;
        }
        if (!ok)
            ++mismatches;
        row.push_back(ok ? "yes" : "MISMATCH");
        table.row(std::move(row));
    }
    return table.render() +
        format("%zu mismatches out of %zu tests\n", mismatches,
               tests.size());
}

} // namespace rex::harness
