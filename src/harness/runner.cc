#include "harness/runner.hh"

#include <chrono>

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "base/strings.hh"
#include "cat/catmodel.hh"
#include "harness/table.hh"
#include "operational/runner.hh"

namespace rex::harness {

namespace {

std::string
verdictName(bool allowed)
{
    return allowed ? "Allowed" : "Forbidden";
}

std::string
condString(const LitmusTest &test)
{
    std::string out;
    for (std::size_t i = 0; i < test.finalCond.atoms.size(); ++i) {
        const CondAtom &atom = test.finalCond.atoms[i];
        if (i)
            out += " & ";
        if (atom.kind == CondAtom::Kind::Register) {
            out += format("%d:%s=%llu", atom.tid,
                          isa::regName(atom.reg).c_str(),
                          static_cast<unsigned long long>(atom.value));
        } else {
            out += format("*%s=%llu", test.locations[atom.loc].c_str(),
                          static_cast<unsigned long long>(atom.value));
        }
    }
    return out;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
hashBytes(std::uint64_t hash, const std::string &text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** The expected verdict of @p test under @p variant (by name). */
bool
expectedVerdict(const LitmusTest &test, const std::string &variant,
                bool model_allowed)
{
    if (variant == "base")
        return test.expectedAllowed;
    if (test.variantAllowed.count(variant))
        return test.variantAllowed.at(variant);
    return model_allowed;
}

} // namespace

std::uint64_t
FigureOptions::seedFor(const std::string &test_name,
                       const std::string &profile_name) const
{
    std::uint64_t hash = 0xcbf29ce484222325ull ^ seed;
    hash = hashBytes(hash, test_name);
    hash ^= 0x9E3779B97F4A7C15ull;
    hash = hashBytes(hash, profile_name);
    // Finalize so adjacent base seeds give unrelated streams; never 0
    // (xorshift RNGs have a fixed point there).
    std::uint64_t out = splitmix64(hash);
    return out ? out : 1;
}

std::string
reproduceFigure(const LitmusTest &test, const FigureOptions &options,
                engine::Engine &engine)
{
    std::string out;
    out += "=== " + test.name + " ===\n";
    if (!test.description.empty())
        out += test.description + "\n";
    out += "final: " + condString(test) + "\n";

    // Expand into independent jobs, each returning the one string cell
    // it is responsible for; the block is assembled in fixed order
    // afterwards, so output does not depend on the schedule.
    const std::vector<op::CoreProfile> devices =
        options.hwSim ? op::CoreProfile::paperDevices()
                      : std::vector<op::CoreProfile>{};
    const std::size_t num_devices = devices.size();
    const std::size_t num_variants = options.variants.size();
    // Job layout: [0] base verdict, [1..D] hw-sim cells,
    // [D+1..D+V] variant verdicts, [D+V+1] optional cat cross-check.
    const std::size_t jobs =
        1 + num_devices + num_variants + (options.catCrossCheck ? 1 : 0);

    std::vector<std::string> cells =
        engine.map(jobs, [&](std::size_t i) -> std::string {
            if (i == 0)
                return verdictName(
                    engine.verdict(test, ModelParams::base()).observable);
            if (i <= num_devices) {
                const op::CoreProfile &profile = devices[i - 1];
                auto start = std::chrono::steady_clock::now();
                op::Runner runner(
                    profile, options.seedFor(test.name, profile.name));
                op::RunStats stats =
                    runner.run(test, options.runsPerDevice);
                engine::JobRecord record;
                record.kind = "hwsim";
                record.test = test.name;
                record.variant = profile.name;
                record.runs = stats.runs;
                record.observed = stats.observed;
                record.wallMicros = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
                engine.results().append(record);
                return stats.cell();
            }
            if (i <= num_devices + num_variants) {
                const ModelParams &variant =
                    options.variants[i - num_devices - 1];
                return verdictName(
                    engine.verdict(test, variant).observable);
            }
            // Cat-vs-native cross-check: one job, same single-pass
            // early-exit order as the legacy serial path, but on the
            // staged enumeration — per (combo, variant) the native
            // skeleton is computed once and shared by every witness.
            auto start = std::chrono::steady_clock::now();
            const cat::CatModel &model = cat::CatModel::shipped();
            bool agree = true;
            CandidateEnumerator enumerator(test);
            std::vector<SkeletonRelations> skels(options.variants.size());
            std::vector<bool> skel_valid(options.variants.size(), false);
            std::size_t skel_combo = 0;
            enumerator.forEachStaged(
                [&](CandidateExecution &cand,
                    const CandidateEnumerator::StagedInfo &info) {
                for (std::size_t v = 0; v < options.variants.size(); ++v) {
                    const ModelParams &variant = options.variants[v];
                    bool native_consistent;
                    if (!info.coherent) {
                        // The coherence pre-filter is exactly the
                        // internal (SC-per-location) axiom, which no
                        // variant relaxes: native rejects outright.
                        native_consistent = false;
                    } else {
                        if (!skel_valid[v] ||
                                skel_combo != info.comboIndex) {
                            if (skel_combo != info.comboIndex) {
                                std::fill(skel_valid.begin(),
                                          skel_valid.end(), false);
                                skel_combo = info.comboIndex;
                            }
                            skels[v] = computeSkeleton(cand, variant);
                            skel_valid[v] = true;
                        }
                        native_consistent =
                            checkConsistent(cand, variant, skels[v],
                                            /*internal_prechecked=*/true)
                                .consistent;
                    }
                    if (native_consistent !=
                            model.check(cand, variant).consistent) {
                        agree = false;
                        return false;
                    }
                }
                return true;
            });
            engine::JobRecord record;
            record.kind = "cat-crosscheck";
            record.test = test.name;
            record.verdict = agree ? "agree" : "DISAGREE";
            record.wallMicros = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            engine.results().append(record);
            return record.verdict;
        });

    out += format("model (base): %s   [architectural intent: %s]\n",
                  cells[0].c_str(),
                  verdictName(test.expectedAllowed).c_str());

    if (options.hwSim) {
        Table hw;
        hw.header({"device (simulated)", "hw-sim refs"});
        for (std::size_t d = 0; d < num_devices; ++d)
            hw.row({devices[d].name, cells[1 + d]});
        out += hw.render();
    }

    Table params;
    params.header({"variant", "model", "expected"});
    for (std::size_t v = 0; v < num_variants; ++v) {
        const ModelParams &variant = options.variants[v];
        std::string expected = "-";
        if (variant.name() == "base") {
            expected = verdictName(test.expectedAllowed);
        } else if (test.variantAllowed.count(variant.name())) {
            expected = verdictName(test.variantAllowed.at(variant.name()));
        }
        params.row({variant.name(), cells[1 + num_devices + v], expected});
    }
    out += params.render();

    if (options.catCrossCheck) {
        out += format("cat-vs-native cross-check: %s\n",
                      cells.back().c_str());
    }
    return out;
}

std::string
reproduceFigure(const LitmusTest &test, const FigureOptions &options)
{
    return reproduceFigure(test, options, engine::Engine::shared());
}

std::string
suiteMatrix(const std::vector<const LitmusTest *> &tests,
            engine::Engine &engine)
{
    const std::vector<ModelParams> variants = ModelParams::paperVariants();
    const std::size_t num_variants = variants.size();

    // One job per (test, variant) cell; reassembled row-major below.
    std::vector<char> verdicts = engine.map(
        tests.size() * num_variants, [&](std::size_t i) -> char {
            const LitmusTest *test = tests[i / num_variants];
            const ModelParams &variant = variants[i % num_variants];
            return engine.isAllowed(*test, variant) ? 'A' : 'F';
        });

    Table table;
    table.header({"test", "expected", "base", "ExS", "SEA_R", "SEA_W",
                  "SEA_RW", "ok"});
    std::size_t mismatches = 0;
    for (std::size_t t = 0; t < tests.size(); ++t) {
        const LitmusTest *test = tests[t];
        std::vector<std::string> row;
        row.push_back(test->name);
        row.push_back(test->expectedAllowed ? "A" : "F");
        bool ok = true;
        for (std::size_t v = 0; v < num_variants; ++v) {
            bool allowed = verdicts[t * num_variants + v] == 'A';
            row.push_back(allowed ? "A" : "F");
            if (allowed !=
                    expectedVerdict(*test, variants[v].name(), allowed))
                ok = false;
        }
        if (!ok)
            ++mismatches;
        row.push_back(ok ? "yes" : "MISMATCH");
        table.row(std::move(row));
    }
    return table.render() +
        format("%zu mismatches out of %zu tests\n", mismatches,
               tests.size());
}

std::string
suiteMatrix(const std::vector<const LitmusTest *> &tests)
{
    return suiteMatrix(tests, engine::Engine::shared());
}

} // namespace rex::harness
