/**
 * @file
 * Plain-text table rendering for the benchmark harness: the hw-refs /
 * param-refs tables of the paper's figures.
 */

#ifndef REX_HARNESS_TABLE_HH
#define REX_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace rex::harness {

/** A simple left-aligned text table. */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace rex::harness

#endif // REX_HARNESS_TABLE_HH
