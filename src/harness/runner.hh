/**
 * @file
 * Figure-reproduction harness: renders, for a litmus test, the same
 * information the paper's figures report — the allowed/forbidden verdict
 * under the baseline model, the hw-refs column (here: hw-sim refs from
 * the operational simulator under the four device profiles), and the
 * param-refs column (model verdicts under the paper's variants).
 */

#ifndef REX_HARNESS_RUNNER_HH
#define REX_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "axiomatic/params.hh"
#include "litmus/litmus.hh"
#include "operational/profile.hh"

namespace rex::harness {

/** Options for figure reproduction. */
struct FigureOptions {
    /** Randomised runs per device profile for the hw-sim column. */
    std::uint64_t runsPerDevice = 20000;

    /** RNG seed. */
    std::uint64_t seed = 42;

    /** Include the hw-sim columns (slower). */
    bool hwSim = true;

    /** Model variants for the param-refs column. */
    std::vector<ModelParams> variants = ModelParams::paperVariants();

    /** Cross-check the shipped cat model against the native model. */
    bool catCrossCheck = false;
};

/**
 * Render a paper-figure-style block for @p test: listing, verdict,
 * hw-sim refs, param-refs.
 */
std::string reproduceFigure(const LitmusTest &test,
                            const FigureOptions &options);

/**
 * Render the whole-suite matrix: one row per test, with the model
 * verdict under every paper variant and the expected verdicts, flagging
 * mismatches.
 * @return the table plus a trailing "n mismatches" line.
 */
std::string suiteMatrix(const std::vector<const LitmusTest *> &tests);

} // namespace rex::harness

#endif // REX_HARNESS_RUNNER_HH
