/**
 * @file
 * Figure-reproduction harness: renders, for a litmus test, the same
 * information the paper's figures report — the allowed/forbidden verdict
 * under the baseline model, the hw-refs column (here: hw-sim refs from
 * the operational simulator under the four device profiles), and the
 * param-refs column (model verdicts under the paper's variants).
 */

#ifndef REX_HARNESS_RUNNER_HH
#define REX_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "axiomatic/params.hh"
#include "engine/batch.hh"
#include "litmus/litmus.hh"
#include "operational/profile.hh"

namespace rex::harness {

/** Options for figure reproduction. */
struct FigureOptions {
    /** Randomised runs per device profile for the hw-sim column. */
    std::uint64_t runsPerDevice = 20000;

    /** Base RNG seed. */
    std::uint64_t seed = 42;

    /** Include the hw-sim columns (slower). */
    bool hwSim = true;

    /** Model variants for the param-refs column. */
    std::vector<ModelParams> variants = ModelParams::paperVariants();

    /** Cross-check the shipped cat model against the native model. */
    bool catCrossCheck = false;

    /**
     * The hw-sim RNG seed for one (test, profile) run: the base seed
     * hashed with the test and profile names, so every run is seeded
     * independently of scheduling — frequency tables are reproducible
     * under any parallel schedule, and every (test, device) pair sees a
     * distinct schedule stream.
     */
    std::uint64_t seedFor(const std::string &test_name,
                          const std::string &profile_name) const;
};

/**
 * Render a paper-figure-style block for @p test: listing, verdict,
 * hw-sim refs, param-refs. The hw-sim profile runs, the per-variant
 * verdicts, and the cat cross-check run as independent jobs on
 * @p engine; output is assembled in deterministic order, so it is
 * byte-identical for every job count.
 */
std::string reproduceFigure(const LitmusTest &test,
                            const FigureOptions &options,
                            engine::Engine &engine);

/** reproduceFigure on the shared (REX_JOBS-configured) engine. */
std::string reproduceFigure(const LitmusTest &test,
                            const FigureOptions &options);

/**
 * Render the whole-suite matrix: one row per test, with the model
 * verdict under every paper variant and the expected verdicts, flagging
 * mismatches. The (test × variant) verdicts run as independent engine
 * jobs; rows are reassembled in input order.
 * @return the table plus a trailing "n mismatches" line.
 */
std::string suiteMatrix(const std::vector<const LitmusTest *> &tests,
                        engine::Engine &engine);

/** suiteMatrix on the shared (REX_JOBS-configured) engine. */
std::string suiteMatrix(const std::vector<const LitmusTest *> &tests);

} // namespace rex::harness

#endif // REX_HARNESS_RUNNER_HH
