#include "harness/table.hh"

#include <algorithm>

namespace rex::harness {

void
Table::header(std::vector<std::string> cells)
{
    _header = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(_header);
    for (const auto &r : _rows)
        grow(r);

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            cell.resize(widths[i], ' ');
            line += cell;
            if (i + 1 < widths.size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!_header.empty()) {
        out += renderRow(_header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : _rows)
        out += renderRow(r);
    return out;
}

} // namespace rex::harness
