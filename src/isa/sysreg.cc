#include "isa/sysreg.hh"

#include "base/strings.hh"

namespace rex::isa {

bool
isSelfSynchronising(Sysreg reg)
{
    return reg == Sysreg::ELR_EL1 || reg == Sysreg::SPSR_EL1;
}

bool
isGicRegister(Sysreg reg)
{
    switch (reg) {
      case Sysreg::ICC_SGI1R_EL1:
      case Sysreg::ICC_IAR1_EL1:
      case Sysreg::ICC_EOIR1_EL1:
      case Sysreg::ICC_DIR_EL1:
      case Sysreg::ICC_PMR_EL1:
        return true;
      default:
        return false;
    }
}

std::string
sysregName(Sysreg reg)
{
    switch (reg) {
      case Sysreg::ESR_EL1:       return "ESR_EL1";
      case Sysreg::ELR_EL1:       return "ELR_EL1";
      case Sysreg::SPSR_EL1:      return "SPSR_EL1";
      case Sysreg::VBAR_EL1:      return "VBAR_EL1";
      case Sysreg::FAR_EL1:       return "FAR_EL1";
      case Sysreg::SCTLR_EL1:     return "SCTLR_EL1";
      case Sysreg::TPIDR_EL1:     return "TPIDR_EL1";
      case Sysreg::ICC_SGI1R_EL1: return "ICC_SGI1R_EL1";
      case Sysreg::ICC_IAR1_EL1:  return "ICC_IAR1_EL1";
      case Sysreg::ICC_EOIR1_EL1: return "ICC_EOIR1_EL1";
      case Sysreg::ICC_DIR_EL1:   return "ICC_DIR_EL1";
      case Sysreg::ICC_PMR_EL1:   return "ICC_PMR_EL1";
      case Sysreg::DAIF:          return "DAIF";
    }
    return "?";
}

std::optional<Sysreg>
parseSysreg(std::string_view text)
{
    std::string up = toUpper(text);
    if (up == "ESR_EL1" || up == "ESR")
        return Sysreg::ESR_EL1;
    if (up == "ELR_EL1" || up == "ELR")
        return Sysreg::ELR_EL1;
    if (up == "SPSR_EL1" || up == "SPSR")
        return Sysreg::SPSR_EL1;
    if (up == "VBAR_EL1" || up == "VBAR")
        return Sysreg::VBAR_EL1;
    if (up == "FAR_EL1" || up == "FAR")
        return Sysreg::FAR_EL1;
    if (up == "SCTLR_EL1" || up == "SCTLR")
        return Sysreg::SCTLR_EL1;
    if (up == "TPIDR_EL1" || up == "TPIDR")
        return Sysreg::TPIDR_EL1;
    if (up == "ICC_SGI1R_EL1" || up == "SGI1R")
        return Sysreg::ICC_SGI1R_EL1;
    if (up == "ICC_IAR1_EL1" || up == "IAR")
        return Sysreg::ICC_IAR1_EL1;
    if (up == "ICC_EOIR1_EL1" || up == "EOIR")
        return Sysreg::ICC_EOIR1_EL1;
    if (up == "ICC_DIR_EL1" || up == "DIR")
        return Sysreg::ICC_DIR_EL1;
    if (up == "ICC_PMR_EL1" || up == "PMR")
        return Sysreg::ICC_PMR_EL1;
    if (up == "DAIF")
        return Sysreg::DAIF;
    return std::nullopt;
}

} // namespace rex::isa
