#include "isa/register.hh"

#include "base/strings.hh"

namespace rex::isa {

std::string
regName(RegId reg)
{
    if (reg == kZeroReg)
        return "XZR";
    return "X" + std::to_string(reg);
}

std::optional<RegId>
parseReg(std::string_view text)
{
    std::string up = toUpper(text);
    if (up == "XZR" || up == "WZR")
        return kZeroReg;
    if (up.size() < 2 || (up[0] != 'X' && up[0] != 'W'))
        return std::nullopt;
    std::int64_t n;
    if (!parseInteger(up.substr(1), n))
        return std::nullopt;
    if (n < 0 || n > 30)
        return std::nullopt;
    return static_cast<RegId>(n);
}

} // namespace rex::isa
