/**
 * @file
 * System and special-purpose registers used by the exception model.
 *
 * The paper (§3.2.5) distinguishes three classes with different ordering
 * behaviour:
 *  - plain system registers (ESR, VBAR, FAR, SCTLR, TPIDR): writes need
 *    context synchronisation to be guaranteed visible; dependencies into
 *    their MSR events compose with ctxob;
 *  - special-purpose, "self-synchronising" registers (ELR, SPSR):
 *    dependencies into them are preserved without context synchronisation;
 *  - GIC CPU-interface registers (ICC_SGI1R_EL1, IAR, EOIR, DIR) and the
 *    DAIF mask: their accesses have GIC-/mask- effects lifted into the
 *    memory model as dedicated events (§7.5).
 */

#ifndef REX_ISA_SYSREG_HH
#define REX_ISA_SYSREG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rex::isa {

/** The system/special registers the litmus suite touches. */
enum class Sysreg : std::uint8_t {
    ESR_EL1,        //!< exception syndrome
    ELR_EL1,        //!< exception link register (special-purpose)
    SPSR_EL1,       //!< saved program status (special-purpose)
    VBAR_EL1,       //!< vector base address
    FAR_EL1,        //!< fault address
    SCTLR_EL1,      //!< system control (holds EIS/EOS under FEAT_ExS)
    TPIDR_EL1,      //!< software thread id register
    ICC_SGI1R_EL1,  //!< SGI generation (GIC)
    ICC_IAR1_EL1,   //!< interrupt acknowledge (GIC)
    ICC_EOIR1_EL1,  //!< end of interrupt / priority drop (GIC)
    ICC_DIR_EL1,    //!< deactivate interrupt (GIC)
    ICC_PMR_EL1,    //!< priority mask (GIC)
    DAIF,           //!< interrupt mask bits (via MSR DAIFSet/DAIFClr)
};

/** Number of modelled system registers. */
inline constexpr std::size_t kNumSysregs = 13;

/** True for special-purpose, self-synchronising registers (§3.2.5). */
bool isSelfSynchronising(Sysreg reg);

/** True for GIC CPU-interface registers whose accesses have GIC effects. */
bool isGicRegister(Sysreg reg);

/** Render the architectural name, e.g. "ELR_EL1". */
std::string sysregName(Sysreg reg);

/**
 * Parse a system-register name as written in litmus tests. Accepts both
 * architectural names ("ICC_IAR1_EL1") and the paper's shorthands
 * ("IAR", "EOIR", "DIR", "ESR_EL1", ...). Case-insensitive.
 */
std::optional<Sysreg> parseSysreg(std::string_view text);

} // namespace rex::isa

#endif // REX_ISA_SYSREG_HH
