#include "isa/instruction.hh"

#include "base/strings.hh"

namespace rex::isa {

bool
Instruction::isLoad() const
{
    switch (op) {
      case Opcode::Ldr:
      case Opcode::Ldar:
      case Opcode::Ldapr:
      case Opcode::Ldxr:
      case Opcode::Ldp:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isStore() const
{
    switch (op) {
      case Opcode::Str:
      case Opcode::Stlr:
      case Opcode::Stxr:
      case Opcode::Stp:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isBranch() const
{
    switch (op) {
      case Opcode::Cbz:
      case Opcode::Cbnz:
      case Opcode::B:
      case Opcode::BCond:
        return true;
      default:
        return false;
    }
}

std::string
condName(CondCode cond)
{
    switch (cond) {
      case CondCode::Eq: return "EQ";
      case CondCode::Ne: return "NE";
      case CondCode::Ge: return "GE";
      case CondCode::Gt: return "GT";
      case CondCode::Le: return "LE";
      case CondCode::Lt: return "LT";
    }
    return "?";
}

bool
condHoldsFor(CondCode cond, std::int64_t lhs, std::int64_t rhs)
{
    switch (cond) {
      case CondCode::Eq: return lhs == rhs;
      case CondCode::Ne: return lhs != rhs;
      case CondCode::Ge: return lhs >= rhs;
      case CondCode::Gt: return lhs > rhs;
      case CondCode::Le: return lhs <= rhs;
      case CondCode::Lt: return lhs < rhs;
    }
    return false;
}

namespace {

std::string
addrString(const Instruction &inst)
{
    switch (inst.mode) {
      case AddrMode::BaseOnly:
        return "[" + regName(inst.rn) + "]";
      case AddrMode::BaseReg:
        return "[" + regName(inst.rn) + "," + regName(inst.rm) + "]";
      case AddrMode::BaseImm:
        return "[" + regName(inst.rn) + ",#" + std::to_string(inst.imm) +
            "]";
      case AddrMode::PostIndex:
        return "[" + regName(inst.rn) + "],#" + std::to_string(inst.imm);
      case AddrMode::PreIndex:
        return "[" + regName(inst.rn) + ",#" + std::to_string(inst.imm) +
            "]!";
    }
    return "[?]";
}

std::string
aluName(AluOp op)
{
    switch (op) {
      case AluOp::Add: return "ADD";
      case AluOp::Sub: return "SUB";
      case AluOp::Eor: return "EOR";
      case AluOp::And: return "AND";
      case AluOp::Orr: return "ORR";
    }
    return "?";
}

std::string
barrierDomain(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::DmbLd:
      case BarrierKind::DsbLd:
        return "LD";
      case BarrierKind::DmbSt:
      case BarrierKind::DsbSt:
        return "ST";
      default:
        return "SY";
    }
}

} // namespace

std::string
Instruction::toString() const
{
    switch (op) {
      case Opcode::Nop:
        return "NOP";
      case Opcode::MovImm:
        if (shift != 0) {
            return format("MOV %s,#%lld,LSL #%d", regName(rd).c_str(),
                          static_cast<long long>(imm), shift);
        }
        return format("MOV %s,#%lld", regName(rd).c_str(),
                      static_cast<long long>(imm));
      case Opcode::MovReg:
        return "MOV " + regName(rd) + "," + regName(rn);
      case Opcode::Ldr:
        return "LDR " + regName(rd) + "," + addrString(*this);
      case Opcode::Str:
        return "STR " + regName(rd) + "," + addrString(*this);
      case Opcode::Ldar:
        return "LDAR " + regName(rd) + "," + addrString(*this);
      case Opcode::Ldapr:
        return "LDAPR " + regName(rd) + "," + addrString(*this);
      case Opcode::Stlr:
        return "STLR " + regName(rd) + "," + addrString(*this);
      case Opcode::Ldxr:
        return "LDXR " + regName(rd) + "," + addrString(*this);
      case Opcode::Stxr:
        return "STXR " + regName(rs) + "," + regName(rd) + "," +
            addrString(*this);
      case Opcode::Ldp:
        return "LDP " + regName(rd) + "," + regName(rs) + "," +
            addrString(*this);
      case Opcode::Stp:
        return "STP " + regName(rd) + "," + regName(rs) + "," +
            addrString(*this);
      case Opcode::Dmb:
        return "DMB " + barrierDomain(barrier);
      case Opcode::Dsb:
        return "DSB " + barrierDomain(barrier);
      case Opcode::Isb:
        return "ISB";
      case Opcode::Alu:
        if (aluImmediate) {
            return aluName(alu) + " " + regName(rd) + "," + regName(rn) +
                ",#" + std::to_string(imm);
        }
        return aluName(alu) + " " + regName(rd) + "," + regName(rn) + "," +
            regName(rm);
      case Opcode::Cmp:
        if (aluImmediate) {
            return "CMP " + regName(rn) + ",#" + std::to_string(imm);
        }
        return "CMP " + regName(rn) + "," + regName(rm);
      case Opcode::Cbz:
        return "CBZ " + regName(rd) + "," + label;
      case Opcode::Cbnz:
        return "CBNZ " + regName(rd) + "," + label;
      case Opcode::B:
        return "B " + label;
      case Opcode::BCond:
        return "B." + condName(cond) + " " + label;
      case Opcode::Svc:
        return "SVC #" + std::to_string(imm);
      case Opcode::Eret:
        return "ERET";
      case Opcode::Mrs:
        return "MRS " + regName(rd) + "," + sysregName(sysreg);
      case Opcode::Msr:
        return "MSR " + sysregName(sysreg) + "," + regName(rn);
      case Opcode::MsrDaifSet:
        return "MSR DAIFSet,#" + std::to_string(imm);
      case Opcode::MsrDaifClr:
        return "MSR DAIFClr,#" + std::to_string(imm);
      case Opcode::Label:
        return label + ":";
    }
    return "?";
}

} // namespace rex::isa
