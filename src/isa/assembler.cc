#include "isa/assembler.hh"

#include "base/logging.hh"
#include "base/strings.hh"
#include "isa/lexer.hh"

namespace rex::isa {

namespace {

/** Cursor over the token stream of one statement. */
class Cursor
{
  public:
    Cursor(const std::vector<Token> &tokens, const std::string &stmt)
        : _tokens(tokens), _stmt(stmt)
    {}

    const Token &peek() const { return _tokens[_pos]; }

    const Token &
    next()
    {
        const Token &t = _tokens[_pos];
        if (t.kind != TokenKind::End)
            ++_pos;
        return t;
    }

    void
    expect(TokenKind kind, const char *what)
    {
        if (!next().is(kind))
            fail(std::string("expected ") + what);
    }

    RegId
    reg()
    {
        const Token &t = next();
        if (!t.is(TokenKind::Ident))
            fail("expected register");
        auto r = parseReg(t.text);
        if (!r)
            fail("bad register '" + t.text + "'");
        return *r;
    }

    std::int64_t
    imm()
    {
        const Token &t = next();
        if (!t.is(TokenKind::Immediate))
            fail("expected immediate");
        return t.value;
    }

    std::string
    ident()
    {
        const Token &t = next();
        if (!t.is(TokenKind::Ident))
            fail("expected identifier");
        return t.text;
    }

    bool
    tryConsume(TokenKind kind)
    {
        if (peek().is(kind)) {
            next();
            return true;
        }
        return false;
    }

    void
    end()
    {
        if (!peek().is(TokenKind::End))
            fail("trailing tokens");
    }

    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal(why + " in statement: " + _stmt);
    }

  private:
    const std::vector<Token> &_tokens;
    const std::string &_stmt;
    std::size_t _pos = 0;
};

/** Parse "[Xn]", "[Xn,Xm]", "[Xn,#i]", "[Xn,#i]!", "[Xn],#i". */
void
parseAddress(Cursor &cur, Instruction &inst)
{
    cur.expect(TokenKind::LBracket, "'['");
    inst.rn = cur.reg();
    inst.mode = AddrMode::BaseOnly;
    if (cur.tryConsume(TokenKind::Comma)) {
        if (cur.peek().is(TokenKind::Immediate)) {
            inst.imm = cur.imm();
            inst.mode = AddrMode::BaseImm;
        } else {
            inst.rm = cur.reg();
            inst.mode = AddrMode::BaseReg;
        }
    }
    cur.expect(TokenKind::RBracket, "']'");
    if (inst.mode == AddrMode::BaseImm &&
            cur.tryConsume(TokenKind::Bang)) {
        inst.mode = AddrMode::PreIndex;
    } else if (inst.mode == AddrMode::BaseOnly &&
            cur.tryConsume(TokenKind::Comma)) {
        inst.imm = cur.imm();
        inst.mode = AddrMode::PostIndex;
    }
}

BarrierKind
parseBarrierDomain(Cursor &cur, bool dsb)
{
    std::string dom = toUpper(cur.ident());
    if (dom == "SY")
        return dsb ? BarrierKind::DsbSy : BarrierKind::DmbSy;
    if (dom == "LD")
        return dsb ? BarrierKind::DsbLd : BarrierKind::DmbLd;
    if (dom == "ST")
        return dsb ? BarrierKind::DsbSt : BarrierKind::DmbSt;
    // ISH* domains behave like the SY forms for our purposes.
    if (dom == "ISH" || dom == "OSH" || dom == "NSH")
        return dsb ? BarrierKind::DsbSy : BarrierKind::DmbSy;
    if (dom == "ISHLD" || dom == "OSHLD" || dom == "NSHLD")
        return dsb ? BarrierKind::DsbLd : BarrierKind::DmbLd;
    if (dom == "ISHST" || dom == "OSHST" || dom == "NSHST")
        return dsb ? BarrierKind::DsbSt : BarrierKind::DmbSt;
    cur.fail("bad barrier domain '" + dom + "'");
}

Instruction
parseAlu(Cursor &cur, AluOp op)
{
    Instruction inst;
    inst.op = Opcode::Alu;
    inst.alu = op;
    inst.rd = cur.reg();
    cur.expect(TokenKind::Comma, "','");
    inst.rn = cur.reg();
    cur.expect(TokenKind::Comma, "','");
    if (cur.peek().is(TokenKind::Immediate)) {
        inst.imm = cur.imm();
        inst.aluImmediate = true;
    } else {
        inst.rm = cur.reg();
    }
    return inst;
}

Instruction
parseLoad(Cursor &cur, Opcode op)
{
    Instruction inst;
    inst.op = op;
    inst.rd = cur.reg();
    cur.expect(TokenKind::Comma, "','");
    parseAddress(cur, inst);
    return inst;
}

} // namespace

Instruction
assembleStatement(const std::string &statement)
{
    std::vector<Token> tokens = tokenizeStatement(statement);
    Cursor cur(tokens, statement);

    const Token &head = cur.next();
    if (!head.is(TokenKind::Ident))
        cur.fail("expected mnemonic or label");

    // Label definition: "name:".
    if (cur.peek().is(TokenKind::Colon)) {
        cur.next();
        cur.end();
        Instruction inst;
        inst.op = Opcode::Label;
        inst.label = head.text;
        return inst;
    }

    std::string mn = toUpper(head.text);
    Instruction inst;

    if (mn == "NOP") {
        inst.op = Opcode::Nop;
    } else if (mn == "MOV") {
        inst.rd = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        if (cur.peek().is(TokenKind::Immediate)) {
            inst.op = Opcode::MovImm;
            inst.imm = cur.imm();
            if (cur.tryConsume(TokenKind::Comma)) {
                std::string lsl = toUpper(cur.ident());
                if (lsl != "LSL")
                    cur.fail("expected LSL");
                inst.shift = static_cast<std::uint8_t>(cur.imm());
            }
        } else {
            inst.op = Opcode::MovReg;
            inst.rn = cur.reg();
        }
    } else if (mn == "LDR") {
        inst = parseLoad(cur, Opcode::Ldr);
    } else if (mn == "STR") {
        inst = parseLoad(cur, Opcode::Str);
    } else if (mn == "LDAR") {
        inst = parseLoad(cur, Opcode::Ldar);
    } else if (mn == "LDAPR") {
        inst = parseLoad(cur, Opcode::Ldapr);
    } else if (mn == "STLR") {
        inst = parseLoad(cur, Opcode::Stlr);
    } else if (mn == "LDXR") {
        inst = parseLoad(cur, Opcode::Ldxr);
    } else if (mn == "LDP" || mn == "STP") {
        inst.op = mn == "LDP" ? Opcode::Ldp : Opcode::Stp;
        inst.rd = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        inst.rs = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        parseAddress(cur, inst);
        if (inst.mode != AddrMode::BaseOnly &&
                inst.mode != AddrMode::BaseImm) {
            cur.fail("LDP/STP support only base or base+imm addressing");
        }
    } else if (mn == "STXR") {
        inst.op = Opcode::Stxr;
        inst.rs = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        inst.rd = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        parseAddress(cur, inst);
    } else if (mn == "DMB" || mn == "DSB") {
        inst.op = mn == "DMB" ? Opcode::Dmb : Opcode::Dsb;
        inst.barrier = parseBarrierDomain(cur, mn == "DSB");
    } else if (mn == "ISB") {
        inst.op = Opcode::Isb;
        inst.barrier = BarrierKind::Isb;
    } else if (mn == "ADD") {
        inst = parseAlu(cur, AluOp::Add);
    } else if (mn == "SUB") {
        inst = parseAlu(cur, AluOp::Sub);
    } else if (mn == "EOR") {
        inst = parseAlu(cur, AluOp::Eor);
    } else if (mn == "AND") {
        inst = parseAlu(cur, AluOp::And);
    } else if (mn == "ORR") {
        inst = parseAlu(cur, AluOp::Orr);
    } else if (mn == "CMP") {
        inst.op = Opcode::Cmp;
        inst.rn = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        if (cur.peek().is(TokenKind::Immediate)) {
            inst.imm = cur.imm();
            inst.aluImmediate = true;
        } else {
            inst.rm = cur.reg();
        }
    } else if (mn.size() > 2 && mn[0] == 'B' && mn[1] == '.') {
        inst.op = Opcode::BCond;
        std::string cc = mn.substr(2);
        if (cc == "EQ")
            inst.cond = CondCode::Eq;
        else if (cc == "NE")
            inst.cond = CondCode::Ne;
        else if (cc == "GE")
            inst.cond = CondCode::Ge;
        else if (cc == "GT")
            inst.cond = CondCode::Gt;
        else if (cc == "LE")
            inst.cond = CondCode::Le;
        else if (cc == "LT")
            inst.cond = CondCode::Lt;
        else
            cur.fail("unsupported condition code '" + cc + "'");
        inst.label = cur.ident();
    } else if (mn == "CBZ" || mn == "CBNZ") {
        inst.op = mn == "CBZ" ? Opcode::Cbz : Opcode::Cbnz;
        inst.rd = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        inst.label = cur.ident();
    } else if (mn == "B") {
        inst.op = Opcode::B;
        inst.label = cur.ident();
    } else if (mn == "SVC") {
        inst.op = Opcode::Svc;
        inst.imm = cur.imm();
    } else if (mn == "ERET") {
        inst.op = Opcode::Eret;
    } else if (mn == "MRS") {
        inst.op = Opcode::Mrs;
        inst.rd = cur.reg();
        cur.expect(TokenKind::Comma, "','");
        std::string name = cur.ident();
        auto sysreg = parseSysreg(name);
        if (!sysreg)
            cur.fail("unknown system register '" + name + "'");
        inst.sysreg = *sysreg;
    } else if (mn == "MSR") {
        std::string name = cur.ident();
        std::string upper = toUpper(name);
        cur.expect(TokenKind::Comma, "','");
        if (upper == "DAIFSET") {
            inst.op = Opcode::MsrDaifSet;
            inst.imm = cur.imm();
        } else if (upper == "DAIFCLR") {
            inst.op = Opcode::MsrDaifClr;
            inst.imm = cur.imm();
        } else {
            auto sysreg = parseSysreg(name);
            if (!sysreg)
                cur.fail("unknown system register '" + name + "'");
            inst.op = Opcode::Msr;
            inst.sysreg = *sysreg;
            inst.rn = cur.reg();
        }
    } else {
        cur.fail("unknown mnemonic '" + mn + "'");
    }

    cur.end();
    return inst;
}

std::size_t
Program::labelIndex(const std::string &label) const
{
    auto it = labels.find(label);
    if (it == labels.end())
        fatal("undefined label '" + label + "'");
    return it->second;
}

std::string
Program::toString() const
{
    std::string out;
    for (std::size_t i = 0; i < code.size(); ++i) {
        for (const auto &[name, idx] : labels) {
            if (idx == i)
                out += name + ":\n";
        }
        out += "    " + code[i].toString() + "\n";
    }
    for (const auto &[name, idx] : labels) {
        if (idx == code.size())
            out += name + ":\n";
    }
    return out;
}

namespace {

/**
 * Expand LDP/STP into their two single-copy-atomic element accesses
 * (s3.4/s6: the elements are separate accesses, each of which may fault
 * independently). Element cells are one location apart (the memory
 * model's cell granularity; see litmus/litmus.hh).
 */
std::vector<Instruction>
expandPair(const Instruction &inst)
{
    if (inst.op == Opcode::Ldp &&
            (inst.rd == inst.rn || inst.rs == inst.rn)) {
        fatal("LDP destination overlaps the base register");
    }
    Instruction first;
    first.op = inst.op == Opcode::Ldp ? Opcode::Ldr : Opcode::Str;
    first.rd = inst.rd;
    first.rn = inst.rn;
    first.imm = inst.imm;
    first.mode = inst.mode == AddrMode::BaseOnly ? AddrMode::BaseOnly
                                                 : AddrMode::BaseImm;

    Instruction second = first;
    second.rd = inst.rs;
    second.imm = inst.imm + 0x1000;
    second.mode = AddrMode::BaseImm;
    second.pairSecond = true;
    return {first, second};
}

} // namespace

Program
assemble(const std::string &text)
{
    Program program;
    for (const std::string &stmt : splitStatements(text)) {
        Instruction inst = assembleStatement(stmt);
        if (inst.op == Opcode::Label) {
            if (program.labels.count(inst.label))
                fatal("duplicate label '" + inst.label + "'");
            program.labels[inst.label] = program.code.size();
        } else if (inst.op == Opcode::Ldp || inst.op == Opcode::Stp) {
            for (Instruction &element : expandPair(inst))
                program.code.push_back(element);
        } else {
            program.code.push_back(inst);
        }
    }
    // Validate branch targets eagerly so errors point at assembly time.
    for (const Instruction &inst : program.code) {
        if (inst.isBranch())
            program.labelIndex(inst.label);
    }
    return program;
}

} // namespace rex::isa
