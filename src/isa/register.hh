/**
 * @file
 * General-purpose register identifiers for the AArch64 subset.
 */

#ifndef REX_ISA_REGISTER_HH
#define REX_ISA_REGISTER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rex::isa {

/**
 * Id of a general-purpose register.
 *
 * 0..30 are X0..X30; 31 is XZR (reads as zero, writes discarded).
 * The 64-bit X views are all the litmus suite uses; W views are parsed
 * and mapped onto the same ids (litmus tests never rely on 32-bit
 * truncation).
 */
using RegId = std::uint8_t;

/** Number of addressable GPR ids (X0..X30 plus XZR). */
inline constexpr RegId kNumRegs = 32;

/** The zero register. */
inline constexpr RegId kZeroReg = 31;

/** Render a register id as "X5" / "XZR". */
std::string regName(RegId reg);

/**
 * Parse "X12" / "W3" / "XZR" / "WZR" (case-insensitive).
 * @return std::nullopt when @p text is not a register name.
 */
std::optional<RegId> parseReg(std::string_view text);

} // namespace rex::isa

#endif // REX_ISA_REGISTER_HH
