/**
 * @file
 * Assembler: litmus-test assembly text -> decoded program.
 */

#ifndef REX_ISA_ASSEMBLER_HH
#define REX_ISA_ASSEMBLER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace rex::isa {

/**
 * A decoded straight-line program with labels.
 *
 * Label pseudo-instructions are removed from @c code; @c labels maps each
 * label name to the index of the instruction it precedes (possibly
 * code.size() for a trailing label).
 */
struct Program {
    std::vector<Instruction> code;
    std::map<std::string, std::size_t> labels;

    /** Index of @p label, fatal() when absent. */
    std::size_t labelIndex(const std::string &label) const;

    /** Render the program as assembly text. */
    std::string toString() const;
};

/**
 * Assemble a program text (newline/';'-separated statements, "//"
 * comments).
 * @throws FatalError on syntax errors or unknown mnemonics.
 */
Program assemble(const std::string &text);

/** Assemble a single statement (no labels). */
Instruction assembleStatement(const std::string &statement);

} // namespace rex::isa

#endif // REX_ISA_ASSEMBLER_HH
