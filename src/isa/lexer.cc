#include "isa/lexer.hh"

#include <cctype>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::isa {

std::vector<std::string>
splitStatements(const std::string &program)
{
    std::vector<std::string> statements;
    std::string current;
    for (std::size_t i = 0; i < program.size(); ++i) {
        char c = program[i];
        if (c == '/' && i + 1 < program.size() && program[i + 1] == '/') {
            // Skip to end of line.
            while (i < program.size() && program[i] != '\n')
                ++i;
            --i;
            continue;
        }
        if (c == '\n' || c == ';') {
            std::string t = trim(current);
            if (!t.empty())
                statements.push_back(t);
            current.clear();
        } else {
            current += c;
        }
    }
    std::string t = trim(current);
    if (!t.empty())
        statements.push_back(t);

    // A statement like "L: NOP" contains a label and an instruction;
    // split after the colon so labels are standalone statements. Take
    // care not to split sysreg names (no ':' appears in those).
    std::vector<std::string> out;
    for (const std::string &stmt : statements) {
        std::size_t colon = stmt.find(':');
        if (colon != std::string::npos && colon + 1 < stmt.size()) {
            std::string head = trim(stmt.substr(0, colon + 1));
            std::string tail = trim(stmt.substr(colon + 1));
            out.push_back(head);
            if (!tail.empty())
                out.push_back(tail);
        } else {
            out.push_back(stmt);
        }
    }
    return out;
}

std::vector<Token>
tokenizeStatement(const std::string &line)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    auto isIdentChar = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.';
    };
    while (i < line.size()) {
        char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        switch (c) {
          case '[':
            tokens.push_back({TokenKind::LBracket, "", 0});
            ++i;
            continue;
          case ']':
            tokens.push_back({TokenKind::RBracket, "", 0});
            ++i;
            continue;
          case ',':
            tokens.push_back({TokenKind::Comma, "", 0});
            ++i;
            continue;
          case '!':
            tokens.push_back({TokenKind::Bang, "", 0});
            ++i;
            continue;
          case ':':
            tokens.push_back({TokenKind::Colon, "", 0});
            ++i;
            continue;
          case '#': {
            std::size_t start = ++i;
            while (i < line.size() &&
                   (isIdentChar(line[i]) || line[i] == '-')) {
                ++i;
            }
            std::int64_t value;
            std::string text = line.substr(start, i - start);
            if (!parseInteger(text, value))
                fatal("bad immediate '#" + text + "' in: " + line);
            tokens.push_back({TokenKind::Immediate, text, value});
            continue;
          }
          default:
            break;
        }
        if (isIdentChar(c)) {
            std::size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            tokens.push_back({TokenKind::Ident,
                              line.substr(start, i - start), 0});
            continue;
        }
        fatal(std::string("unexpected character '") + c + "' in: " + line);
    }
    tokens.push_back({TokenKind::End, "", 0});
    return tokens;
}

} // namespace rex::isa
