/**
 * @file
 * Tokeniser for the AArch64 assembly subset used in litmus tests.
 *
 * One Lexer instance tokenises one line (one statement); the assembler
 * splits the program into statements first (newlines and ';').
 */

#ifndef REX_ISA_LEXER_HH
#define REX_ISA_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rex::isa {

/** Kind of an assembly token. */
enum class TokenKind : std::uint8_t {
    Ident,     //!< mnemonic, register, sysreg, or label name
    Immediate, //!< #imm (value in Token::value)
    LBracket,
    RBracket,
    Comma,
    Bang,      //!< '!' (pre-index writeback)
    Colon,     //!< ':' (label definition)
    End,       //!< end of statement
};

/** One token. */
struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;          //!< for Ident
    std::int64_t value = 0;    //!< for Immediate

    bool is(TokenKind k) const { return kind == k; }
};

/**
 * Tokenise one assembly statement.
 * @throws FatalError on malformed input (bad immediate, stray character).
 */
std::vector<Token> tokenizeStatement(const std::string &line);

/**
 * Split a program text into statements: newline- or ';'-separated,
 * with "//" comments stripped. Blank statements are dropped.
 */
std::vector<std::string> splitStatements(const std::string &program);

} // namespace rex::isa

#endif // REX_ISA_LEXER_HH
