/**
 * @file
 * Instruction representation for the AArch64 subset.
 *
 * The subset covers every opcode appearing in the paper's litmus tests
 * (§3, §4, §7): moves, loads/stores (plain, acquire/release, exclusive,
 * and the post/pre-index forms whose writeback interacts with exceptions,
 * §3.4), barriers, ALU ops for dependency chains, conditional branches,
 * exception entry/return, and system-register accesses including the GIC
 * CPU interface and DAIF masking.
 */

#ifndef REX_ISA_INSTRUCTION_HH
#define REX_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "events/event.hh"
#include "isa/register.hh"
#include "isa/sysreg.hh"

namespace rex::isa {

/** Opcode of an instruction in the subset. */
enum class Opcode : std::uint8_t {
    Nop,
    MovImm,    //!< MOV Xd, #imm (with optional LSL)
    MovReg,    //!< MOV Xd, Xn
    Ldr,       //!< LDR Xt, [..]
    Str,       //!< STR Xt, [..]
    Ldar,      //!< LDAR Xt, [Xn]   (acquire)
    Ldapr,     //!< LDAPR Xt, [Xn]  (acquirePC)
    Stlr,      //!< STLR Xt, [Xn]   (release)
    Ldxr,      //!< LDXR Xt, [Xn]   (exclusive load)
    Stxr,      //!< STXR Ws, Xt, [Xn] (exclusive store)
    Ldp,       //!< LDP Xt1, Xt2, [Xn]: two single-copy-atomic reads
    Stp,       //!< STP Xt1, Xt2, [Xn]: two single-copy-atomic writes
    Dmb,       //!< DMB SY/LD/ST
    Dsb,       //!< DSB SY/LD/ST
    Isb,       //!< ISB
    Alu,       //!< ADD/SUB/EOR/AND/ORR Xd, Xn, (Xm | #imm)
    Cmp,       //!< CMP Xn, (Xm | #imm): sets NZCV
    Cbz,       //!< CBZ Xt, label
    Cbnz,      //!< CBNZ Xt, label
    B,         //!< B label
    BCond,     //!< B.EQ/B.NE/... label (reads NZCV)
    Svc,       //!< SVC #imm
    Eret,      //!< ERET
    Mrs,       //!< MRS Xt, sysreg
    Msr,       //!< MSR sysreg, Xt
    MsrDaifSet,//!< MSR DAIFSet, #imm
    MsrDaifClr,//!< MSR DAIFClr, #imm
    Label,     //!< pseudo-instruction: label definition
};

/** ALU operation selector for Opcode::Alu. */
enum class AluOp : std::uint8_t {
    Add,
    Sub,
    Eor,
    And,
    Orr,
};

/** Condition code for Opcode::BCond (subset). */
enum class CondCode : std::uint8_t {
    Eq,  //!< Z set
    Ne,  //!< Z clear
    Ge,  //!< signed >=
    Gt,  //!< signed >
    Le,  //!< signed <=
    Lt,  //!< signed <
};

/** Name a condition code, e.g. "EQ". */
std::string condName(CondCode cond);

/** Evaluate @p cond for the comparison lhs - rhs (signed). */
bool condHoldsFor(CondCode cond, std::int64_t lhs, std::int64_t rhs);

/** Memory addressing mode. */
enum class AddrMode : std::uint8_t {
    BaseOnly,   //!< [Xn]
    BaseReg,    //!< [Xn, Xm]
    BaseImm,    //!< [Xn, #imm]
    PostIndex,  //!< [Xn], #imm  (writeback after access, §3.4)
    PreIndex,   //!< [Xn, #imm]! (writeback before access)
};

/** One decoded instruction. */
struct Instruction {
    Opcode op = Opcode::Nop;

    RegId rd = kZeroReg;   //!< destination / transfer register
    RegId rn = kZeroReg;   //!< base / first source
    RegId rm = kZeroReg;   //!< second source / index
    RegId rs = kZeroReg;   //!< STXR status register

    std::int64_t imm = 0;  //!< immediate operand
    std::uint8_t shift = 0;//!< LSL amount on MovImm

    AddrMode mode = AddrMode::BaseOnly;
    AluOp alu = AluOp::Add;
    bool aluImmediate = false; //!< Alu/Cmp second operand is imm, not rm
    CondCode cond = CondCode::Eq;

    /** True on the second element access of an expanded LDP/STP pair:
     *  if it faults, the first element's effects are architecturally
     *  UNKNOWN-adjacent (s6 of the paper) and the trace is flagged. */
    bool pairSecond = false;

    BarrierKind barrier = BarrierKind::DmbSy;
    Sysreg sysreg = Sysreg::ESR_EL1;

    std::string label;     //!< branch target or label name

    bool isLoad() const;
    bool isStore() const;
    bool isMemoryAccess() const { return isLoad() || isStore(); }
    bool isBranch() const;

    /** Render back to assembly text (diagnostics). */
    std::string toString() const;
};

} // namespace rex::isa

#endif // REX_ISA_INSTRUCTION_HH
