/**
 * @file
 * Tests for rex-cont-v1 enumeration continuations (engine/continuation,
 * engine/batch verdictRecordResumable, the /check resume protocol):
 * token round-trip and strict-parse rejection, the fingerprint covering
 * both job identity and payload, resumed-in-pieces runs byte-identical
 * to uninterrupted ones across every builtin x paper variant at
 * randomized split points, multi-piece chains identical between
 * REX_JOBS 1 and 4 engines, shard-range partition arithmetic, and the
 * service-level 400/409 refusal + resume-loop protocol.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "axiomatic/checker.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/continuation.hh"
#include "litmus/registry.hh"
#include "server/json.hh"
#include "server/metrics.hh"
#include "server/service.hh"

namespace rex {
namespace {

/** An engine with no cache and no results file. */
engine::EngineConfig
plainConfig(unsigned jobs)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

/** A record's JSON with the schedule-dependent fields zeroed. */
std::string
stableJson(engine::JobRecord record)
{
    record.wallMicros = 0;
    record.cacheHit = false;
    return record.toJson();
}

/** Deterministic per-(test, variant) pseudo-random stream (FNV/LCG). */
std::uint64_t
mix(const std::string &name, const std::string &variant,
    std::uint64_t salt)
{
    std::uint64_t h = 0xcbf29ce484222325ull ^ salt;
    for (char c : name + ":" + variant)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

/** A fully-populated state for serialization tests. */
engine::ContinuationState
sampleState()
{
    engine::ContinuationState state;
    state.planTarget = 256;
    state.planSize = 17;
    state.nextShard = 3;
    state.nextOffset = 41;
    state.candidates = 812;
    state.consistent = 33;
    state.witnesses = 2;
    state.constrainedUnpredictable = 5;
    state.unknownSideEffects = 1;
    state.forbiddingAxiom = "external:unusual \"chars\" \n ok";
    state.forbiddingCycle = {0, 7, 4294967295u};
    state.fingerprint = engine::continuationFingerprint(
        "src", "base", engine::kModelRevision, state);
    return state;
}

/**
 * Drive @p engine through a chain of budgeted resumable pieces: the
 * first piece under @p firstBudget, every later piece under
 * @p laterBudget, resuming on the ExhaustedBudget token each time.
 * Every piece's record lands in @p pieces; the completed final record
 * is the return value.
 */
engine::JobRecord
runChain(engine::Engine &engine, const LitmusTest &test,
         const ModelParams &params, const engine::Budget &firstBudget,
         const engine::Budget &laterBudget,
         std::vector<engine::JobRecord> *pieces = nullptr)
{
    engine::JobRecord record =
        engine.verdictRecordResumable(test, params, firstBudget);
    for (int hop = 0; hop < 10000; ++hop) {
        if (pieces)
            pieces->push_back(record);
        if (record.verdict != "ExhaustedBudget")
            return record;
        EXPECT_FALSE(record.continuation.empty())
            << test.name << "/" << params.name()
            << ": budget-tripped resumable record carries no token";
        engine::ContinuationState state;
        std::string error;
        EXPECT_TRUE(engine::parseContinuation(record.continuation,
                                              state, &error))
            << error;
        const std::string &source =
            test.sourceText.empty() ? test.name : test.sourceText;
        EXPECT_EQ(state.fingerprint,
                  engine::continuationFingerprint(
                      source, params.name(), engine::kModelRevision,
                      state))
            << test.name << ": token failed its own fingerprint";
        record = engine.verdictRecordResumable(test, params,
                                               laterBudget, &state);
    }
    ADD_FAILURE() << test.name << "/" << params.name()
                  << ": chain did not converge";
    return record;
}

// ---------------------------------------------------------------------
// Token serialization
// ---------------------------------------------------------------------

TEST(ContinuationToken, RoundTripsEveryField)
{
    engine::ContinuationState state = sampleState();
    std::string token = engine::serializeContinuation(state);
    EXPECT_TRUE(startsWith(token, engine::kContinuationMagic));

    engine::ContinuationState back;
    std::string error;
    ASSERT_TRUE(engine::parseContinuation(token, back, &error)) << error;
    EXPECT_EQ(back.fingerprint, state.fingerprint);
    EXPECT_EQ(back.planTarget, state.planTarget);
    EXPECT_EQ(back.planSize, state.planSize);
    EXPECT_EQ(back.nextShard, state.nextShard);
    EXPECT_EQ(back.nextOffset, state.nextOffset);
    EXPECT_EQ(back.candidates, state.candidates);
    EXPECT_EQ(back.consistent, state.consistent);
    EXPECT_EQ(back.witnesses, state.witnesses);
    EXPECT_EQ(back.constrainedUnpredictable,
              state.constrainedUnpredictable);
    EXPECT_EQ(back.unknownSideEffects, state.unknownSideEffects);
    EXPECT_EQ(back.forbiddingAxiom, state.forbiddingAxiom);
    EXPECT_EQ(back.forbiddingCycle, state.forbiddingCycle);

    // Serialization is canonical: a round-trip re-serializes to the
    // same bytes.
    EXPECT_EQ(engine::serializeContinuation(back), token);
}

TEST(ContinuationToken, StrictParseRejectsMalformedTokens)
{
    engine::ContinuationState out;
    const std::string good =
        engine::serializeContinuation(sampleState());

    EXPECT_FALSE(engine::parseContinuation("", out));
    EXPECT_FALSE(engine::parseContinuation("garbage", out));
    EXPECT_FALSE(engine::parseContinuation("rex-cont-v2" +
                                               good.substr(11),
                                           out))
        << "an unknown version must be refused, not guessed at";
    EXPECT_FALSE(engine::parseContinuation(good + ":17", out))
        << "trailing fields must be refused";
    EXPECT_FALSE(
        engine::parseContinuation(good.substr(0, good.rfind(':')), out))
        << "truncated tokens must be refused";

    std::string letters = good;
    letters.replace(letters.find(":256:"), 5, ":25x:");
    EXPECT_FALSE(engine::parseContinuation(letters, out));
}

TEST(ContinuationToken, FingerprintCoversIdentityAndPayload)
{
    engine::ContinuationState state = sampleState();
    const std::uint64_t print = engine::continuationFingerprint(
        "src", "base", engine::kModelRevision, state);

    EXPECT_NE(print, engine::continuationFingerprint(
                         "src-edited", "base", engine::kModelRevision,
                         state))
        << "an edited test source must invalidate the token";
    EXPECT_NE(print, engine::continuationFingerprint(
                         "src", "SEA_RW", engine::kModelRevision, state))
        << "a different variant must invalidate the token";
    EXPECT_NE(print,
              engine::continuationFingerprint("src", "base", "rev-next",
                                              state))
        << "a model revision bump must invalidate the token";

    engine::ContinuationState tampered = state;
    tampered.nextOffset += 1;
    EXPECT_NE(print, engine::continuationFingerprint(
                         "src", "base", engine::kModelRevision,
                         tampered))
        << "a tampered cursor must invalidate the token";
    tampered = state;
    tampered.witnesses += 1;
    EXPECT_NE(print, engine::continuationFingerprint(
                         "src", "base", engine::kModelRevision,
                         tampered))
        << "tampered counts must invalidate the token";
}

// ---------------------------------------------------------------------
// Shard-range arithmetic
// ---------------------------------------------------------------------

TEST(ShardRange, PartitionedRangesSumToTheWholeCheck)
{
    engine::Engine engine(plainConfig(2));
    const LitmusTest &test = TestRegistry::instance().get("IRIW+addrs");
    const ModelParams params = ModelParams::byName("base");

    ShardRangeSpec whole;
    ShardRangeOutcome full = engine.runShardRange(test, params, whole);
    ASSERT_TRUE(full.planned);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.planSize, 1u);

    // Split the plan at every shard boundary: the two pieces' counts
    // must sum to the whole, piecewise.
    for (std::uint64_t cut = 1; cut < full.planSize; ++cut) {
        ShardRangeSpec lo, hi;
        lo.shardEnd = cut;
        hi.shardBegin = cut;
        ShardRangeOutcome a = engine.runShardRange(test, params, lo);
        ShardRangeOutcome b = engine.runShardRange(test, params, hi);
        ASSERT_TRUE(a.planned && b.planned);
        EXPECT_TRUE(a.completed && b.completed);
        EXPECT_EQ(a.planSize, full.planSize);
        EXPECT_EQ(a.result.candidates + b.result.candidates,
                  full.result.candidates)
            << "split at shard " << cut;
        EXPECT_EQ(a.result.consistent + b.result.consistent,
                  full.result.consistent);
        EXPECT_EQ(a.result.witnesses + b.result.witnesses,
                  full.result.witnesses);
    }
}

// ---------------------------------------------------------------------
// Resumed == uninterrupted
// ---------------------------------------------------------------------

TEST(Resume, EveryBuiltinEveryPaperVariantSplitsLosslessly)
{
    engine::Engine engine(plainConfig(4));
    const TestRegistry &registry = TestRegistry::instance();
    const std::vector<ModelParams> variants =
        ModelParams::paperVariants();

    for (const std::string &name : registry.names()) {
        const LitmusTest &test = registry.get(name);
        for (const ModelParams &params : variants) {
            engine::JobRecord whole = engine.verdictRecordResumable(
                test, params, engine::Budget{});
            ASSERT_NE(whole.verdict, "ExhaustedBudget")
                << name << ": unbudgeted run tripped a budget";
            if (whole.candidates < 2)
                continue;

            // One seeded-random split point per (test, variant): trip
            // the first piece on a candidate ceiling strictly inside
            // the enumeration, then let the resume run to completion.
            engine::Budget first;
            first.maxCandidates =
                1 + mix(name, params.name(), 0x5eed) %
                        (whole.candidates - 1);
            engine::JobRecord stitched = runChain(
                engine, test, params, first, engine::Budget{});
            EXPECT_EQ(stableJson(stitched), stableJson(whole))
                << name << "/" << params.name() << " split at "
                << first.maxCandidates;
        }
    }
}

TEST(Resume, ChainsConvergeIdenticallyAcrossJobs1AndJobs4)
{
    engine::Engine serial(plainConfig(1));
    engine::Engine parallel(plainConfig(4));
    const TestRegistry &registry = TestRegistry::instance();

    const char *kTests[] = {"IRIW+addrs", "SB+dmb.sy+eret",
                            "MP+dmb.sy+addr", "LB+addrs"};
    const char *kVariants[] = {"base", "SEA_RW"};
    for (const char *name : kTests) {
        const LitmusTest &test = registry.get(name);
        for (const char *variant : kVariants) {
            const ModelParams params = ModelParams::byName(variant);

            // Many tiny pieces: a 3-candidate ceiling forces a long
            // chain. On the serial engine the merged prefix at each
            // trip is deterministic, so the whole chain — every
            // intermediate record and token — must replay identically.
            engine::Budget tiny;
            tiny.maxCandidates = 3;
            std::vector<engine::JobRecord> runA;
            std::vector<engine::JobRecord> runB;
            engine::JobRecord a =
                runChain(serial, test, params, tiny, tiny, &runA);
            engine::JobRecord b =
                runChain(serial, test, params, tiny, tiny, &runB);
            ASSERT_EQ(runA.size(), runB.size())
                << name << "/" << variant;
            for (std::size_t i = 0; i < runA.size(); ++i) {
                EXPECT_EQ(stableJson(runA[i]), stableJson(runB[i]))
                    << name << "/" << variant << " piece " << i;
                EXPECT_EQ(runA[i].continuation, runB[i].continuation)
                    << name << "/" << variant << " token " << i;
            }
            // A Forbidden verdict needs the full enumeration, so the
            // 3-candidate ceiling must have tripped at least once; an
            // Allowed one may exit on an early witness in one piece.
            if (a.verdict == "Forbidden" && a.candidates > 3) {
                EXPECT_GT(runA.size(), 1u)
                    << name << "/" << variant << ": chain never split";
            }

            // The parallel engine's intermediate split points are
            // schedule-dependent (4 workers race the shared ceiling),
            // but its stitched final must be byte-identical.
            engine::JobRecord c =
                runChain(parallel, test, params, tiny, tiny);
            EXPECT_EQ(stableJson(a), stableJson(b));
            EXPECT_EQ(stableJson(a), stableJson(c))
                << name << "/" << variant << ": jobs=4 final differs";

            // Tokens are portable across REX_JOBS: alternate engines
            // every hop and the chain still converges to the same
            // record.
            engine::JobRecord mixed =
                serial.verdictRecordResumable(test, params, tiny);
            for (int hop = 0; mixed.verdict == "ExhaustedBudget";
                 ++hop) {
                ASSERT_LT(hop, 10000);
                engine::ContinuationState state;
                ASSERT_TRUE(engine::parseContinuation(
                    mixed.continuation, state));
                engine::Engine &next =
                    (hop % 2 == 0) ? parallel : serial;
                mixed = next.verdictRecordResumable(test, params, tiny,
                                                    &state);
            }
            EXPECT_EQ(stableJson(mixed), stableJson(a))
                << name << "/" << variant
                << ": cross-engine chain diverged";
        }
    }
}

// ---------------------------------------------------------------------
// The /check resume protocol (service level, no sockets)
// ---------------------------------------------------------------------

/** POST /check with @p body through a fresh service. */
server::HttpResponse
post(server::CheckService &service, const std::string &body)
{
    server::HttpRequest request;
    request.method = "POST";
    request.path = "/check";
    request.body = body;
    return service.handle(request);
}

std::string
quoted(const std::string &text)
{
    return "\"" + engine::jsonEscape(text) + "\"";
}

TEST(ResumeProtocol, RefusesMalformedAndMismatchedTokens)
{
    engine::Engine engine(plainConfig(2));
    server::Metrics metrics;
    server::CheckService service(engine, metrics);
    const std::string sourceA =
        TestRegistry::instance().sourceText("IRIW+addrs");
    const std::string sourceB =
        TestRegistry::instance().sourceText("LB+addrs");

    // A garbled token is a 400 before any engine work.
    server::HttpResponse bad = post(
        service, "{\"test\":" + quoted(sourceA) +
                     ",\"variants\":[\"base\"],"
                     "\"resume\":\"rex-cont-v1:nonsense\"}");
    EXPECT_EQ(bad.status, 400);
    EXPECT_EQ(metrics.continuationRefused.load(), 1u);

    // Trip a budget to get a genuine token...
    server::HttpResponse tripped = post(
        service, "{\"test\":" + quoted(sourceA) +
                     ",\"variants\":[\"base\"],\"resumable\":true,"
                     "\"max_candidates\":5}");
    ASSERT_EQ(tripped.status, 200);
    server::JsonValue line = server::parseJson(trim(tripped.body));
    const server::JsonValue *token = line.find("continuation");
    ASSERT_TRUE(token && token->isString() && !token->string.empty());
    EXPECT_GE(metrics.continuationsIssued.load(), 1u);

    // ...then replay it against a different test: refused with 409,
    // never silently recomputed.
    server::HttpResponse mismatched = post(
        service, "{\"test\":" + quoted(sourceB) +
                     ",\"variants\":[\"base\"],\"resume\":" +
                     quoted(token->string) + "}");
    EXPECT_EQ(mismatched.status, 409);
    EXPECT_EQ(metrics.continuationRefused.load(), 2u);

    // A resume must bind to exactly one variant.
    server::HttpResponse twoVariants = post(
        service, "{\"test\":" + quoted(sourceA) +
                     ",\"variants\":[\"base\",\"ExS\"],\"resume\":" +
                     quoted(token->string) + "}");
    EXPECT_EQ(twoVariants.status, 400);

    // The genuine token against the right job is accepted.
    server::HttpResponse resumed = post(
        service, "{\"test\":" + quoted(sourceA) +
                     ",\"variants\":[\"base\"],\"resumable\":true,"
                     "\"resume\":" + quoted(token->string) + "}");
    EXPECT_EQ(resumed.status, 200);
    EXPECT_GE(metrics.resumeAccepted.load(), 1u);
}

TEST(ResumeProtocol, StitchedLoopMatchesTheUnbudgetedAnswer)
{
    engine::Engine engine(plainConfig(2));
    server::Metrics metrics;
    server::CheckService service(engine, metrics);
    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");

    server::HttpResponse whole =
        post(service, "{\"test\":" + quoted(source) +
                          ",\"variants\":[\"base\"]}");
    ASSERT_EQ(whole.status, 200);

    // The client loop rex_client --resume-budget implements: re-POST
    // the continuation until the stream completes.
    std::string body = "{\"test\":" + quoted(source) +
                       ",\"variants\":[\"base\"],\"resumable\":true,"
                       "\"max_candidates\":3}";
    int hops = 0;
    std::string finalLine;
    for (;; ++hops) {
        ASSERT_LT(hops, 1000);
        server::HttpResponse piece = post(service, body);
        ASSERT_EQ(piece.status, 200);
        finalLine = trim(piece.body);
        server::JsonValue line = server::parseJson(finalLine);
        const server::JsonValue *verdict = line.find("verdict");
        ASSERT_TRUE(verdict && verdict->isString());
        if (verdict->string != "ExhaustedBudget")
            break;
        const server::JsonValue *token = line.find("continuation");
        ASSERT_TRUE(token && token->isString());
        body = "{\"test\":" + quoted(source) +
               ",\"variants\":[\"base\"],\"resumable\":true,"
               "\"max_candidates\":3,\"resume\":" +
               quoted(token->string) + "}";
    }
    EXPECT_GT(hops, 1);

    // Stabilise both final lines through the shared JSON parser and
    // renderer: only wall time may differ.
    auto stabilise = [](const std::string &text) {
        server::JsonValue v = server::parseJson(text);
        engine::JobRecord record;
        auto str = [&](const char *key) {
            const server::JsonValue *m = v.find(key);
            return m && m->isString() ? m->string : std::string();
        };
        auto num = [&](const char *key) -> std::uint64_t {
            const server::JsonValue *m = v.find(key);
            return m && m->isInt()
                       ? static_cast<std::uint64_t>(m->integer)
                       : 0;
        };
        record.kind = str("kind");
        record.test = str("test");
        record.variant = str("variant");
        record.verdict = str("verdict");
        record.candidates = num("candidates");
        record.consistent = num("consistent");
        record.witnesses = num("witnesses");
        record.forbidding = str("forbidding");
        record.exhaustedAxis = str("exhausted_axis");
        return record.toJson();
    };
    EXPECT_EQ(stabilise(finalLine), stabilise(trim(whole.body)));
    EXPECT_GE(metrics.resumeAccepted.load(),
              static_cast<std::uint64_t>(hops));
}

} // namespace
} // namespace rex
