/**
 * @file
 * Tests for the harness (table rendering, figure reproduction, suite
 * matrix) and the dot output of candidate executions.
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

TEST(TableTest, AlignsColumns)
{
    harness::Table table;
    table.header({"a", "long-header"});
    table.row({"wide-cell", "x"});
    table.row({"y"});
    std::string out = table.render();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("a          long-header"), std::string::npos);
    EXPECT_NE(out.find("wide-cell  x"), std::string::npos);
}

TEST(TableTest, EmptyTableRendersNothing)
{
    harness::Table table;
    EXPECT_EQ(table.render(), "");
}

TEST(FigureReproduction, ContainsVerdictAndVariants)
{
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    harness::FigureOptions options;
    options.hwSim = false;  // keep the unit test fast
    std::string out = harness::reproduceFigure(test, options);
    EXPECT_NE(out.find("SB+dmb.sy+eret"), std::string::npos);
    EXPECT_NE(out.find("model (base): Allowed"), std::string::npos);
    EXPECT_NE(out.find("SEA_W"), std::string::npos);
    EXPECT_NE(out.find("Forbidden"), std::string::npos);
}

TEST(FigureReproduction, HwSimColumnsPresent)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    harness::FigureOptions options;
    options.runsPerDevice = 200;
    std::string out = harness::reproduceFigure(test, options);
    EXPECT_NE(out.find("cortex-a53"), std::string::npos);
    EXPECT_NE(out.find("cortex-a73"), std::string::npos);
    EXPECT_NE(out.find("/200"), std::string::npos);
}

TEST(SuiteMatrix, ReportsZeroMismatches)
{
    std::string out = harness::suiteMatrix(
        TestRegistry::instance().suite("sea"));
    EXPECT_NE(out.find("0 mismatches"), std::string::npos);
}

TEST(DotOutput, WellFormedGraph)
{
    const LitmusTest &test = TestRegistry::instance().get("MP+pos");
    CheckResult result = checkTest(test, ModelParams::base());
    ASSERT_TRUE(result.witness.has_value());
    std::string dot = result.witness->toDot();
    EXPECT_EQ(dot.substr(0, 8), "digraph ");
    EXPECT_NE(dot.find("cluster_t0"), std::string::npos);
    EXPECT_NE(dot.find("cluster_t1"), std::string::npos);
    EXPECT_NE(dot.find("label=\"rf\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"po\""), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
    // Balanced braces.
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotOutput, ExceptionEventsRendered)
{
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    CheckResult result = checkTest(test, ModelParams::base());
    ASSERT_TRUE(result.witness.has_value());
    std::string dot = result.witness->toDot();
    EXPECT_NE(dot.find("TE(svc)"), std::string::npos);
    EXPECT_NE(dot.find("ERET"), std::string::npos);
}

} // namespace
} // namespace rex
