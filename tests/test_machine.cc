/**
 * @file
 * Transition-level unit tests for the operational machine: issue /
 * satisfy / commit mechanics, forwarding, barrier blocking, DSB issue
 * stalls, fault draining, interrupt transitions, and profile gating.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "litmus/parser.hh"
#include "operational/machine.hh"

namespace rex {
namespace {

using op::CoreProfile;
using op::Machine;

using Kind = Machine::Transition::Kind;

/** Transitions of a given kind for a given thread. */
std::vector<Machine::Transition>
of(const Machine &machine, Kind kind, int thread)
{
    std::vector<Machine::Transition> out;
    for (const auto &t : machine.enabled()) {
        if (t.kind == kind && t.thread == thread)
            out.push_back(t);
    }
    return out;
}

/** Apply the first enabled transition of the kind; assert it exists. */
void
applyOne(Machine &machine, Kind kind, int thread)
{
    auto ts = of(machine, kind, thread);
    ASSERT_FALSE(ts.empty()) << "no transition of that kind enabled";
    machine.apply(ts.front());
}

/** Drive the machine to completion issuing/satisfying/committing
 *  eagerly in deterministic order. */
void
drain(Machine &machine)
{
    int guard = 0;
    while (!machine.done()) {
        auto ts = machine.enabled();
        ASSERT_FALSE(ts.empty());
        // Prefer forgoing stray interrupts so the run terminates.
        auto forgo = std::find_if(ts.begin(), ts.end(), [](auto &t) {
            return t.kind == Kind::ForgoInterrupt;
        });
        machine.apply(forgo != ts.end() ? *forgo : ts.front());
        ASSERT_LT(++guard, 10000);
    }
}

TEST(MachineTest, IssueSatisfyCommitFlow)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=7\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "    LDR X0,[X1]\n"
        "allowed: 0:X0=7\n");
    Machine machine(test, CoreProfile::maxRelaxed());

    // Nothing in flight: only Issue is enabled.
    auto ts = machine.enabled();
    ASSERT_EQ(ts.size(), 1u);
    EXPECT_EQ(ts[0].kind, Kind::Issue);

    applyOne(machine, Kind::Issue, 0);  // store enters the window
    applyOne(machine, Kind::Issue, 0);  // load enters the window

    // The load can satisfy by forwarding from the uncommitted store.
    ASSERT_EQ(of(machine, Kind::Satisfy, 0).size(), 1u);
    applyOne(machine, Kind::Satisfy, 0);
    applyOne(machine, Kind::Commit, 0);
    applyOne(machine, Kind::Issue, 0);  // issue "end" -> finished
    EXPECT_TRUE(machine.done());
    EXPECT_EQ(machine.outcome().values.at("0:X0"), 7u);
    EXPECT_EQ(machine.outcome().values.at("*x"), 7u);
}

TEST(MachineTest, ForwardingDisabledBlocksSatisfy)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=7\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "    LDR X0,[X1]\n"
        "allowed: 0:X0=7\n");
    CoreProfile profile = CoreProfile::maxRelaxed();
    profile.forwarding = false;
    Machine machine(test, profile);
    applyOne(machine, Kind::Issue, 0);
    applyOne(machine, Kind::Issue, 0);

    // No forwarding: the load must wait for the commit.
    EXPECT_TRUE(of(machine, Kind::Satisfy, 0).empty());
    applyOne(machine, Kind::Commit, 0);
    EXPECT_EQ(of(machine, Kind::Satisfy, 0).size(), 1u);
}

TEST(MachineTest, DmbSyBlocksLoadUntilStoreCommits)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "    DMB SY\n"
        "    LDR X0,[X3]\n"
        "allowed: 0:X0=0\n");
    Machine machine(test, CoreProfile::maxRelaxed());
    applyOne(machine, Kind::Issue, 0);  // store
    applyOne(machine, Kind::Issue, 0);  // dmb
    applyOne(machine, Kind::Issue, 0);  // load

    // The DMB SY is incomplete (store uncommitted): load blocked.
    EXPECT_TRUE(of(machine, Kind::Satisfy, 0).empty());
    applyOne(machine, Kind::Commit, 0);
    // Commit completed the store; the barrier auto-completes, load free.
    EXPECT_EQ(of(machine, Kind::Satisfy, 0).size(), 1u);
}

TEST(MachineTest, DmbStDoesNotBlockLoads)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "    DMB ST\n"
        "    LDR X0,[X3]\n"
        "allowed: 0:X0=0\n");
    Machine machine(test, CoreProfile::maxRelaxed());
    applyOne(machine, Kind::Issue, 0);
    applyOne(machine, Kind::Issue, 0);
    applyOne(machine, Kind::Issue, 0);
    // DMB ST only orders stores; the (other-location) load may satisfy.
    EXPECT_EQ(of(machine, Kind::Satisfy, 0).size(), 1u);
}

TEST(MachineTest, DsbBlocksIssueUntilDrained)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=1\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "    DSB ST\n"
        "    NOP\n"
        "allowed: *x=1\n");
    Machine machine(test, CoreProfile::maxRelaxed());
    applyOne(machine, Kind::Issue, 0);  // store
    applyOne(machine, Kind::Issue, 0);  // dsb (incomplete)
    // Issue is stalled by the incomplete DSB.
    EXPECT_TRUE(of(machine, Kind::Issue, 0).empty());
    applyOne(machine, Kind::Commit, 0);
    // Store committed -> DSB completes -> issue resumes.
    EXPECT_FALSE(of(machine, Kind::Issue, 0).empty());
}

TEST(MachineTest, LoadLoadReorderGatedByProfile)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "    LDR X2,[X3]\n"
        "allowed: 0:X0=0\n");
    {
        Machine machine(test, CoreProfile::cortexA53());
        applyOne(machine, Kind::Issue, 0);
        applyOne(machine, Kind::Issue, 0);
        // In-order loads: only the oldest may satisfy.
        EXPECT_EQ(of(machine, Kind::Satisfy, 0).size(), 1u);
        EXPECT_EQ(of(machine, Kind::Satisfy, 0)[0].opIndex, 0);
    }
    {
        Machine machine(test, CoreProfile::cortexA73());
        applyOne(machine, Kind::Issue, 0);
        applyOne(machine, Kind::Issue, 0);
        EXPECT_EQ(of(machine, Kind::Satisfy, 0).size(), 2u);
    }
}

TEST(MachineTest, FaultDrainsWindowBeforeRedirect)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "    MOV X5,#0\n"
        "    LDR X4,[X5]\n"
        "handler 0:\n"
        "    MOV X6,#1\n"
        "allowed: 0:X6=1\n");
    Machine machine(test, CoreProfile::maxRelaxed());
    applyOne(machine, Kind::Issue, 0);  // first load in flight
    applyOne(machine, Kind::Issue, 0);  // MOV X5,#0
    // The faulting access cannot issue while the window is non-empty
    // (the FEAT_ETS2 drain).
    EXPECT_TRUE(of(machine, Kind::Issue, 0).empty());
    applyOne(machine, Kind::Satisfy, 0);
    EXPECT_FALSE(of(machine, Kind::Issue, 0).empty());
    applyOne(machine, Kind::Issue, 0);  // fault -> handler
    drain(machine);
    EXPECT_EQ(machine.outcome().values.at("0:X6"), 1u);
}

TEST(MachineTest, MandatoryInterruptBlocksIssue)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "L:\n"
        "    NOP\n"
        "handler 0:\n"
        "    MOV X3,#1\n"
        "interrupt 0 at L\n"
        "allowed: 0:X3=1\n");
    Machine machine(test, CoreProfile::cortexA53());
    // Only TakeInterrupt is enabled at the pinned point.
    auto ts = machine.enabled();
    ASSERT_EQ(ts.size(), 1u);
    EXPECT_EQ(ts[0].kind, Kind::TakeInterrupt);
    machine.apply(ts[0]);
    drain(machine);
    EXPECT_EQ(machine.outcome().values.at("0:X3"), 1u);
}

TEST(MachineTest, SgiDeliversThroughGic)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:PSTATE.EL=1; 1:X1=x\n"
        "thread 0:\n"
        "    MOV X2,#1,LSL #40\n"
        "    MSR ICC_SGI1R_EL1,X2\n"
        "thread 1:\n"
        "    NOP\n"
        "handler 1:\n"
        "    MOV X3,#1\n"
        "allowed: 1:X3=1\n");
    Machine machine(test, CoreProfile::cortexA53());
    // Before the SGI is sent, thread 1 has no interrupt to take.
    EXPECT_TRUE(of(machine, Kind::TakeInterrupt, 1).empty());
    applyOne(machine, Kind::Issue, 0);  // MOV
    applyOne(machine, Kind::Issue, 0);  // MSR SGI1R -> GIC pends on T1
    ASSERT_FALSE(of(machine, Kind::TakeInterrupt, 1).empty());
    applyOne(machine, Kind::TakeInterrupt, 1);
    drain(machine);
    EXPECT_EQ(machine.outcome().values.at("1:X3"), 1u);
}

TEST(MachineTest, StateKeyDistinguishesStates)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=1\n"
        "thread 0:\n"
        "    STR X2,[X1]\n"
        "allowed: *x=1\n");
    Machine machine(test, CoreProfile::cortexA53());
    std::string k0 = machine.stateKey();
    applyOne(machine, Kind::Issue, 0);
    std::string k1 = machine.stateKey();
    applyOne(machine, Kind::Commit, 0);
    std::string k2 = machine.stateKey();
    EXPECT_NE(k0, k1);
    EXPECT_NE(k1, k2);
    machine.reset();
    EXPECT_EQ(machine.stateKey(), k0);
}

TEST(MachineTest, ReleaseWaitsForAllEarlierAccesses)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "    STLR X2,[X3]\n"
        "allowed: 0:X0=0\n");
    Machine machine(test, CoreProfile::maxRelaxed());
    applyOne(machine, Kind::Issue, 0);
    applyOne(machine, Kind::Issue, 0);
    // The release cannot commit while the earlier load is unsatisfied,
    // even on the most relaxed profile.
    EXPECT_TRUE(of(machine, Kind::Commit, 0).empty());
    applyOne(machine, Kind::Satisfy, 0);
    EXPECT_FALSE(of(machine, Kind::Commit, 0).empty());
}

} // namespace
} // namespace rex
