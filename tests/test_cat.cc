/**
 * @file
 * Tests for the cat interpreter: lexer/parser units, evaluator semantics
 * on hand-built candidates, and — most importantly — per-candidate
 * cross-validation of the shipped aarch64-exceptions.cat against the
 * native C++ model over the whole litmus library (the repository's
 * Figure 9 "model == implementation" check).
 */

#include <gtest/gtest.h>

#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "base/logging.hh"
#include "cat/catmodel.hh"
#include "cat/lexer.hh"
#include "cat/eval.hh"
#include "cat/parser.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

using cat::CatFile;
using cat::CatModel;
using cat::parseCat;

TEST(CatLexer, TokenizesFigureNineFragment)
{
    auto tokens = cat::tokenize(
        "let speculative = ctrl | addr; po "
        "| if \"SEA_R\" then [R]; po else 0");
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, cat::TokKind::KwLet);
    EXPECT_EQ(tokens[1].text, "speculative");
}

TEST(CatLexer, HandlesNestedComments)
{
    auto tokens = cat::tokenize("(* a (* nested *) comment *) let x = po");
    EXPECT_EQ(tokens[0].kind, cat::TokKind::KwLet);
}

TEST(CatLexer, HyphenatedIdentifiers)
{
    auto tokens = cat::tokenize("acyclic po-loc | fr as internal");
    EXPECT_EQ(tokens[1].text, "po-loc");
}

TEST(CatParser, ParsesChecksAndLets)
{
    CatFile file = parseCat(
        "\"toy\"\n"
        "let a = po; po\n"
        "acyclic a as myCheck\n"
        "irreflexive a+\n"
        "empty a & a as e\n");
    EXPECT_EQ(file.modelName, "toy");
    ASSERT_EQ(file.statements.size(), 4u);
    EXPECT_EQ(file.statements[1].checkName, "myCheck");
}

TEST(CatParser, IfBranchesBindAtSeqLevel)
{
    // The union must continue after the conditional's else branch.
    CatFile file = parseCat(
        "let s = ctrl | if \"F\" then [R]; po else 0 | addr\n");
    const cat::Expr &top = *file.statements[0].bindings[0].second;
    // Top must be a union whose right-hand side is 'addr'.
    ASSERT_EQ(top.kind, cat::Expr::Kind::Union);
    EXPECT_EQ(top.rhs->kind, cat::Expr::Kind::Name);
    EXPECT_EQ(top.rhs->name, "addr");
}

TEST(CatParser, HerdCompatibilityStatements)
{
    // show/unshow/flag are accepted (herd compatibility); show is a
    // no-op, flag only warns.
    CatFile file = parseCat(
        "let a = po\n"
        "show a, a; a as b\n"
        "unshow a\n"
        "flag ~empty a as diag\n");
    ASSERT_EQ(file.statements.size(), 4u);
    EXPECT_EQ(file.statements[1].kind, cat::Statement::Kind::Show);
    EXPECT_EQ(file.statements[3].kind, cat::Statement::Kind::Flag);
    EXPECT_TRUE(file.statements[3].flagNegated);
}

TEST(CatParser, RejectsGarbage)
{
    EXPECT_THROW(parseCat("let = po"), FatalError);
    EXPECT_THROW(parseCat("acyclic"), FatalError);
    EXPECT_THROW(cat::tokenize("let a = po ^ po"), FatalError);
}

/** A small hand-built candidate: two threads, one location. */
CandidateExecution
tinyCandidate()
{
    CandidateExecution cand;
    cand.locNames = {"x"};
    cand.numThreads = 2;

    Event init;
    init.id = 0;
    init.kind = EventKind::WriteMem;
    init.initial = true;
    cand.events.push_back(init);

    Event w;
    w.id = 1;
    w.tid = 0;
    w.poIndex = 0;
    w.kind = EventKind::WriteMem;
    w.value = 1;
    cand.events.push_back(w);

    Event r;
    r.id = 2;
    r.tid = 1;
    r.poIndex = 0;
    r.kind = EventKind::ReadMem;
    r.value = 1;
    cand.events.push_back(r);

    std::size_t n = cand.events.size();
    cand.po = Relation(n);
    cand.iio = Relation(n);
    cand.addr = Relation(n);
    cand.data = Relation(n);
    cand.ctrl = Relation(n);
    cand.rmw = Relation(n);
    cand.rf = Relation(n);
    cand.co = Relation(n);
    cand.interruptWitness = Relation(n);
    cand.rf.add(1, 2);
    cand.co.add(0, 1);
    cand.finalRegs.resize(2);
    return cand;
}

TEST(CatEval, BuiltinsAndOperators)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {{"F", true}}, nullptr);

    CatFile file = parseCat(
        "let rw = [W]; (rf | co)\n"
        "let viaif = if \"F\" then rf else 0\n"
        "let viaelse = if \"G\" then rf else 0\n"
        "acyclic rf | co as ok\n");
    cat::EvalResult result = eval.evaluateFile(file);
    EXPECT_TRUE(result.consistent);
    ASSERT_EQ(result.checks.size(), 1u);
    EXPECT_TRUE(result.checks[0].passed);

    EXPECT_EQ(eval.binding("viaif").asRel(cand.size()).pairCount(), 1u);
    EXPECT_EQ(eval.binding("viaelse").asRel(cand.size()).pairCount(), 0u);
    EXPECT_TRUE(eval.binding("rw").asRel(cand.size()).contains(1, 2));
}

TEST(CatEval, DetectsCycles)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {}, nullptr);
    CatFile file = parseCat("acyclic rf | rf^-1 as bad\n");
    cat::EvalResult result = eval.evaluateFile(file);
    EXPECT_FALSE(result.consistent);
    ASSERT_TRUE(result.checks[0].cycle.has_value());
}

TEST(CatEval, FlagWarnsButNeverFails)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {}, nullptr);
    CatFile file = parseCat(
        "show rf\n"
        "flag ~empty rf as diag\n"
        "acyclic rf as ok\n");
    cat::EvalResult result = eval.evaluateFile(file);
    EXPECT_TRUE(result.consistent);
    EXPECT_EQ(result.checks.size(), 1u);  // only the acyclic check
}

TEST(CatEval, RecursiveLetComputesFixpoint)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {}, nullptr);
    // A recursive definition of transitive closure over (rf | po-ish):
    // r = base | r; base must equal base+.
    CatFile file = parseCat(
        "let base = rf | co\n"
        "let direct = base+\n"
        "let rec r = base | r; base\n");
    eval.evaluateFile(file);
    EXPECT_EQ(eval.binding("r").asRel(cand.size()),
              eval.binding("direct").asRel(cand.size()));
}

TEST(CatEval, MutuallyRecursiveLets)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {}, nullptr);
    // Mutually recursive pair whose union is the closure of rf | co.
    CatFile file = parseCat(
        "let base = rf | co\n"
        "let rec a = base | b; base\n"
        "and b = a\n"
        "let direct = base+\n");
    eval.evaluateFile(file);
    EXPECT_EQ(eval.binding("a").asRel(cand.size()),
              eval.binding("direct").asRel(cand.size()));
}

TEST(CatEval, RangeAndDomain)
{
    CandidateExecution cand = tinyCandidate();
    cat::Evaluator eval(cand, {}, nullptr);
    CatFile file = parseCat(
        "let d = domain(rf)\n"
        "let r = range(rf)\n");
    eval.evaluateFile(file);
    EXPECT_TRUE(eval.binding("d").asSet(cand.size()).contains(1));
    EXPECT_TRUE(eval.binding("r").asSet(cand.size()).contains(2));
}

TEST(CatModelFile, ShippedModelLoads)
{
    const CatModel &model = CatModel::shipped();
    EXPECT_EQ(model.name(), "Arm-A exceptions");
}

TEST(CatModelFile, ExceptionsModelConservativeOverBase)
{
    // On exception-free candidates the exceptions model must agree with
    // the shipped user-mode base model: the extension only adds clauses
    // over the new event kinds.
    CatModel base_model =
        CatModel::loadFile(cat::modelDir() + "/aarch64-base.cat");
    const CatModel &exc_model = CatModel::shipped();
    ModelParams params = ModelParams::base();

    for (const LitmusTest *test :
            TestRegistry::instance().suite("core")) {
        CandidateEnumerator enumerator(*test);
        std::size_t checked = 0;
        enumerator.forEach([&](CandidateExecution &cand) {
            // Skip candidates with exception machinery (CMP tests with
            // SVC live in core too).
            if (cand.takeExceptions().count() != 0 ||
                    cand.erets().count() != 0) {
                return true;
            }
            bool base_ok =
                base_model.check(cand, params).consistent;
            bool exc_ok = exc_model.check(cand, params).consistent;
            EXPECT_EQ(base_ok, exc_ok) << test->name;
            return ++checked < 1000;
        });
    }
}

// ---------------------------------------------------------------------
// Cross-validation: the shipped cat model and the native model must give
// identical consistency verdicts on every candidate of every test, under
// every paper variant.
// ---------------------------------------------------------------------

struct CrossCase {
    const LitmusTest *test;
    std::string variant;
};

std::vector<CrossCase>
crossCases()
{
    std::vector<CrossCase> cases;
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        cases.push_back({test, "base"});
        for (const auto &[variant, allowed] : test->variantAllowed)
            cases.push_back({test, variant});
    }
    return cases;
}

class CatCrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CatCrossValidation, AgreesWithNativeModelPerCandidate)
{
    const CrossCase &c = GetParam();
    ModelParams params = ModelParams::byName(c.variant);
    const CatModel &model = CatModel::shipped();

    CandidateEnumerator enumerator(*c.test);
    std::size_t checked = 0;
    std::size_t disagreements = 0;
    enumerator.forEach([&](CandidateExecution &cand) {
        ModelResult native = checkConsistent(cand, params);
        ModelResult interpreted = model.check(cand, params);
        if (native.consistent != interpreted.consistent) {
            ++disagreements;
            ADD_FAILURE() << c.test->name << " under " << c.variant
                          << ": native=" << native.consistent
                          << " cat=" << interpreted.consistent << "\n"
                          << cand.dump();
        }
        ++checked;
        // Cap the work per test; disagreement anywhere still fails.
        return checked < 2000 && disagreements == 0;
    });
    EXPECT_GT(checked, 0u);
}

std::string
crossName(const ::testing::TestParamInfo<CrossCase> &info)
{
    std::string name = info.param.test->name + "_" + info.param.variant;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllTests, CatCrossValidation,
                         ::testing::ValuesIn(crossCases()), crossName);

} // namespace
} // namespace rex
