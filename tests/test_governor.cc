/**
 * @file
 * Tests for the resource governor and the fault-injection harness: the
 * budget axes (candidate ceilings exact and schedule-independent,
 * deadlines, memory caps, external cancellation), the ExhaustedBudget
 * path through the engine (partial statistics, never cached, budget
 * fields only on exhausted records), crash-safe cache entries
 * (checksummed, torn/corrupt entries evicted as misses), degraded-mode
 * behaviour at every fault point, and the client's retry backoff
 * arithmetic. This file runs under TSan in CI: the governor's whole
 * job is cross-thread cooperative cancellation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "axiomatic/checker.hh"
#include "base/memtrack.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/faultinject.hh"
#include "engine/governor.hh"
#include "engine/pool.hh"
#include "engine/results.hh"
#include "litmus/registry.hh"
#include "server/client.hh"

namespace rex {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
        ("rex_governor_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

engine::EngineConfig
plainConfig(unsigned jobs)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

/** Disarm the process-wide injector when a test body exits. */
struct FaultGuard {
    ~FaultGuard() { engine::faultInjector().configure(""); }
};

/** The builtin test with the largest candidate space (scanned once). */
const LitmusTest &
bigTest()
{
    static const std::string name = [] {
        const TestRegistry &registry = TestRegistry::instance();
        std::string best;
        std::size_t most = 0;
        for (const std::string &candidate : registry.names()) {
            CheckResult full = checkTest(registry.get(candidate),
                                         ModelParams::base(), false,
                                         false);
            if (full.candidates > most) {
                most = full.candidates;
                best = candidate;
            }
        }
        return best;
    }();
    return TestRegistry::instance().get(name);
}

// ---------------------------------------------------------------------
// Governor: axes
// ---------------------------------------------------------------------

TEST(Governor, CandidateCeilingIsExact)
{
    engine::Budget budget;
    budget.maxCandidates = 3;
    engine::Governor governor(budget);
    EXPECT_TRUE(governor.admit());
    EXPECT_TRUE(governor.admit());
    EXPECT_TRUE(governor.admit());
    EXPECT_FALSE(governor.tripped());
    // The fourth candidate trips the ceiling and is NOT counted.
    EXPECT_FALSE(governor.admit());
    EXPECT_TRUE(governor.tripped());
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Candidates);
    EXPECT_EQ(governor.candidatesVisited(), 3u);
    // Once tripped, every later admit is rejected without counting.
    EXPECT_FALSE(governor.admit());
    EXPECT_EQ(governor.candidatesVisited(), 3u);
}

TEST(Governor, CeilingTripIsDeterministicAcrossJobCounts)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);
    ASSERT_GT(full.candidates, 8u);
    const std::uint64_t ceiling = full.candidates / 2;

    engine::Budget budget;
    budget.maxCandidates = ceiling;

    // Serial.
    engine::Governor serial(budget);
    CheckResult one =
        checkTest(test, params, false, false, nullptr, &serial);
    EXPECT_EQ(one.exhaustedAxis, "candidates");
    EXPECT_FALSE(one.complete());
    EXPECT_EQ(one.candidates, ceiling);

    // Sharded over four workers: the shared-atomic admission admits
    // exactly min(total, ceiling) regardless of the schedule.
    engine::ThreadPool pool(4);
    engine::Governor sharded(budget);
    CheckResult four =
        checkTest(test, params, false, false, &pool, &sharded);
    EXPECT_EQ(four.exhaustedAxis, "candidates");
    EXPECT_EQ(four.candidates, ceiling);
    EXPECT_EQ(sharded.candidatesVisited(), ceiling);
}

TEST(Governor, CompletesUntouchedWhenBudgetIsRoomy)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);

    engine::Budget budget;
    budget.maxCandidates = full.candidates + 10;
    engine::Governor governor(budget);
    CheckResult res =
        checkTest(test, params, false, false, nullptr, &governor);
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.exhaustedAxis, "");
    EXPECT_EQ(res.candidates, full.candidates);
    EXPECT_EQ(res.consistent, full.consistent);
    EXPECT_EQ(res.witnesses, full.witnesses);
    EXPECT_EQ(res.observable, full.observable);
}

TEST(Governor, DeadlineTripsAndReportsPartialProgress)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    engine::Budget budget = engine::Budget::withDeadlineMs(20);
    engine::Governor governor(budget);
    // Re-check in a loop until the deadline lands: a single check may
    // complete inside 20ms, but the governor's clock keeps running.
    CheckResult res;
    while (!governor.tripped())
        res = checkTest(test, params, false, false, nullptr, &governor);
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Deadline);
    EXPECT_EQ(res.exhaustedAxis, "deadline");
    EXPECT_GE(governor.elapsedMicros(), 20000u);
    EXPECT_GT(governor.candidatesVisited(), 0u);
}

TEST(Governor, MemoryAxisComparesAgainstConstructionBaseline)
{
    engine::Budget budget;
    budget.maxHeapBytes = 1024;
    engine::Governor governor(budget);
    EXPECT_TRUE(governor.admit());
    memtrack::add(1 << 20);
    EXPECT_FALSE(governor.admit());
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Memory);
    memtrack::sub(1 << 20);
    // Latched: releasing the memory does not un-trip the budget.
    EXPECT_FALSE(governor.admit());
}

TEST(Governor, ExternalCancelStopsWithinFiftyMs)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    engine::CancelToken external;
    engine::Governor governor(engine::Budget{}, &external);

    CheckResult res;
    std::thread worker([&] {
        while (!governor.tripped())
            res = checkTest(test, params, false, false, nullptr,
                            &governor);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto tripTime = std::chrono::steady_clock::now();
    external.trip(engine::BudgetAxis::Cancelled);
    worker.join();
    const auto latency =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - tripTime);
    EXPECT_LT(latency.count(), 50);
    EXPECT_EQ(res.exhaustedAxis, "cancelled");
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Cancelled);
}

TEST(Governor, StageIsRecorded)
{
    const LitmusTest &test = bigTest();
    engine::Budget budget;
    budget.maxCandidates = 1;
    engine::Governor governor(budget);
    checkTest(test, ModelParams::base(), false, false, nullptr,
              &governor);
    EXPECT_STREQ(governor.stageReached(), "enumerate");
}

// ---------------------------------------------------------------------
// Engine: the ExhaustedBudget path
// ---------------------------------------------------------------------

TEST(EngineBudget, ExhaustedRecordCarriesPartialStats)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 2;
    engine::JobRecord record =
        engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(record.verdict, "ExhaustedBudget");
    EXPECT_EQ(record.exhaustedAxis, "candidates");
    EXPECT_EQ(record.stage, "enumerate");
    EXPECT_EQ(record.candidates, 2u);
    const std::string json = record.toJson();
    EXPECT_NE(json.find("\"exhausted_axis\":\"candidates\""),
              std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"enumerate\""), std::string::npos);
}

TEST(EngineBudget, UnbudgetedRecordHasNoBudgetFields)
{
    engine::Engine engine(plainConfig(1));
    engine::JobRecord record =
        engine.verdictRecord(bigTest(), ModelParams::base());
    EXPECT_TRUE(record.exhaustedAxis.empty());
    const std::string json = record.toJson();
    EXPECT_EQ(json.find("exhausted_axis"), std::string::npos);
    EXPECT_EQ(json.find("\"stage\""), std::string::npos);
}

TEST(EngineBudget, ExhaustedVerdictsAreNeverCached)
{
    engine::EngineConfig config;
    config.jobs = 1;
    config.cacheEnabled = true;  // in-memory only: no cacheDir
    engine::Engine engine(config);

    engine::Budget tiny;
    tiny.maxCandidates = 1;
    engine::JobRecord partial =
        engine.verdictRecord(bigTest(), ModelParams::base(), tiny);
    EXPECT_EQ(partial.verdict, "ExhaustedBudget");
    EXPECT_EQ(engine.cache().entryCount(), 0u);

    // A complete check populates the cache as usual...
    engine::JobRecord complete =
        engine.verdictRecord(bigTest(), ModelParams::base());
    EXPECT_NE(complete.verdict, "ExhaustedBudget");
    EXPECT_EQ(engine.cache().entryCount(), 1u);

    // ...and a cached complete verdict satisfies any later budget:
    // same verdict, cache hit, no ExhaustedBudget even under a budget
    // the fresh check could never meet.
    engine::JobRecord served =
        engine.verdictRecord(bigTest(), ModelParams::base(), tiny);
    EXPECT_EQ(served.verdict, complete.verdict);
    EXPECT_EQ(served.candidates, complete.candidates);
    EXPECT_TRUE(served.cacheHit);
}

TEST(EngineBudget, CandidateCountersAreMonotonic)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 4;
    engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(engine.liveCandidates(), 0u);
    EXPECT_EQ(engine.candidatesEnumerated(), 4u);
    engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(engine.candidatesEnumerated(), 8u);
}

TEST(EngineBudget, BudgetedVerdictMatchesRecord)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 2;
    CheckResult res =
        engine.verdict(bigTest(), ModelParams::base(), budget);
    EXPECT_FALSE(res.complete());
    EXPECT_EQ(res.exhaustedAxis, "candidates");
    EXPECT_FALSE(res.observable);
}

// ---------------------------------------------------------------------
// Verdict cache: crash safety
// ---------------------------------------------------------------------

engine::VerdictKey
sampleKey()
{
    return engine::VerdictKey::make(bigTest(), ModelParams::base());
}

engine::CachedVerdict
sampleVerdict()
{
    engine::CachedVerdict value;
    value.observable = true;
    value.candidates = 123;
    value.consistent = 45;
    value.witnesses = 6;
    return value;
}

/** Path of the one on-disk entry under @p dir. */
fs::path
onlyEntry(const std::string &dir)
{
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".rexv")
            return entry.path();
    }
    return {};
}

TEST(CacheCrashSafety, FlippedByteIsDetectedEvictedAndMissed)
{
    const std::string dir = scratchDir("corrupt");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());

    // Flip one byte in the payload.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() - 5] ^= 0x20;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
    EXPECT_EQ(fresh.misses(), 1u);
    // The damaged entry is deleted, not retried forever.
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheCrashSafety, TruncatedEntryIsDetectedAndEvicted)
{
    const std::string dir = scratchDir("torn");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());
    fs::resize_file(path, fs::file_size(path) / 2);

    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheCrashSafety, InjectedTornWriteIsRejectedOnLoad)
{
    FaultGuard guard;
    const std::string dir = scratchDir("fault_write");
    {
        engine::VerdictCache cache(true, dir);
        engine::faultInjector().configure("cache-write:1.0:7");
        cache.store(sampleKey(), sampleVerdict());
        EXPECT_GT(engine::faultInjector().injected(
                      engine::FaultPoint::CacheWrite),
                  0u);
        engine::faultInjector().configure("");  // resets the counters
        // The writer's own in-memory table still serves the verdict.
        EXPECT_TRUE(cache.lookup(sampleKey()).has_value());
    }

    // A later process sees the torn file: checksum rejects it.
    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
}

TEST(CacheCrashSafety, InjectedReadFaultIsAMissNotAnEviction)
{
    FaultGuard guard;
    const std::string dir = scratchDir("fault_read");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());

    engine::VerdictCache fresh(true, dir);
    engine::faultInjector().configure("cache-read:1.0:7");
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    engine::faultInjector().configure("");
    // A transient read failure must not delete the (healthy) entry.
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(fresh.corruptEvictions(), 0u);
    std::optional<engine::CachedVerdict> value =
        fresh.lookup(sampleKey());
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->candidates, 123u);
}

// ---------------------------------------------------------------------
// Degraded modes: sink, pool
// ---------------------------------------------------------------------

TEST(FaultDegradation, SinkWriteFaultDropsAndCounts)
{
    FaultGuard guard;
    const std::string path =
        scratchDir("sink") + "/results.jsonl";
    engine::ResultsSink sink;
    sink.open(path);
    engine::JobRecord record;
    record.test = "t";
    record.variant = "base";
    record.verdict = "Allowed";

    engine::faultInjector().configure("sink-write:1.0:3");
    sink.append(record);
    engine::faultInjector().configure("");
    sink.append(record);
    sink.close();

    EXPECT_EQ(sink.droppedRecords(), 1u);
    EXPECT_EQ(sink.records(), 1u);
    std::ifstream in(path);
    std::string line, last;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            ++lines;
            last = line;
        }
    }
    // The dropped record never reached the file, and the survivor is a
    // whole line — no torn output.
    EXPECT_EQ(lines, 1u);
    EXPECT_NE(last.find("\"verdict\":\"Allowed\""), std::string::npos);
}

TEST(FaultDegradation, PoolSpawnFaultRunsTasksInline)
{
    FaultGuard guard;
    engine::faultInjector().configure("pool-spawn:1.0:5");
    engine::ThreadPool pool(2);
    std::atomic<int> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 1; i <= 50; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; return i; }));
    for (int i = 1; i <= 50; ++i)
        EXPECT_EQ(futures[i - 1].get(), i);
    EXPECT_EQ(sum.load(), 50 * 51 / 2);
    EXPECT_GT(
        engine::faultInjector().injected(engine::FaultPoint::PoolSpawn),
        0u);
}

TEST(FaultDegradation, BudgetedCheckSurvivesPoolSpawnFault)
{
    FaultGuard guard;
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);

    engine::faultInjector().configure("pool-spawn:0.5:11");
    engine::ThreadPool pool(4);
    CheckResult degraded =
        checkTest(test, params, false, false, &pool);
    engine::faultInjector().configure("");
    EXPECT_EQ(degraded.candidates, full.candidates);
    EXPECT_EQ(degraded.consistent, full.consistent);
    EXPECT_EQ(degraded.observable, full.observable);
}

// ---------------------------------------------------------------------
// The fault injector itself
// ---------------------------------------------------------------------

TEST(FaultInjector, UnarmedNeverFails)
{
    FaultGuard guard;
    engine::faultInjector().configure("");
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(engine::faultInjector().shouldFail(
            engine::FaultPoint::SinkWrite));
    }
}

TEST(FaultInjector, DecisionSequenceIsDeterministic)
{
    FaultGuard guard;
    auto sequence = [] {
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i) {
            out.push_back(engine::faultInjector().shouldFail(
                engine::FaultPoint::SockSend));
        }
        return out;
    };
    engine::faultInjector().configure("sock-send:0.5:42");
    std::vector<bool> first = sequence();
    engine::faultInjector().configure("sock-send:0.5:42");
    std::vector<bool> second = sequence();
    EXPECT_EQ(first, second);
    // ~0.5 probability: both outcomes appear in 64 draws.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
    // A different seed yields a different sequence.
    engine::faultInjector().configure("sock-send:0.5:43");
    EXPECT_NE(sequence(), first);
}

TEST(FaultInjector, ProbabilityOneAlwaysProbabilityZeroNever)
{
    FaultGuard guard;
    engine::faultInjector().configure("cache-read:1.0:1");
    for (int i = 0; i < 32; ++i) {
        EXPECT_TRUE(engine::faultInjector().shouldFail(
            engine::FaultPoint::CacheRead));
    }
    EXPECT_EQ(
        engine::faultInjector().checked(engine::FaultPoint::CacheRead),
        32u);
    EXPECT_EQ(
        engine::faultInjector().injected(engine::FaultPoint::CacheRead),
        32u);
    engine::faultInjector().configure("cache-read:0.0:1");
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(engine::faultInjector().shouldFail(
            engine::FaultPoint::CacheRead));
    }
}

TEST(FaultInjector, MalformedClausesAreSkipped)
{
    FaultGuard guard;
    engine::faultInjector().configure(
        "nonsense:1.0:1,cache-write:not-a-number:2,sock-send:1.0:3");
    EXPECT_FALSE(
        engine::faultInjector().armed(engine::FaultPoint::CacheWrite));
    EXPECT_TRUE(
        engine::faultInjector().armed(engine::FaultPoint::SockSend));
}

// ---------------------------------------------------------------------
// Client retry backoff arithmetic
// ---------------------------------------------------------------------

TEST(RetryBackoff, GrowsExponentiallyWithinJitterBounds)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    policy.maxDelayMs = 2000;
    // Attempt k's nominal delay is 100 * 2^(k-1), +-25% jitter.
    for (int attempt = 1; attempt <= 4; ++attempt) {
        const int nominal = 100 << (attempt - 1);
        const int delay = server::retryDelayMs(policy, attempt, 0);
        EXPECT_GE(delay, nominal * 3 / 4);
        EXPECT_LE(delay, nominal * 5 / 4);
    }
}

TEST(RetryBackoff, CapsAtMaxDelay)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    policy.maxDelayMs = 500;
    const int delay = server::retryDelayMs(policy, 10, 0);
    EXPECT_LE(delay, 500 * 5 / 4);
    EXPECT_GE(delay, 500 * 3 / 4);
}

TEST(RetryBackoff, RetryAfterIsAFloorNeverShortened)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    EXPECT_GE(server::retryDelayMs(policy, 1, 10), 10000);
    // A Retry-After below the computed backoff changes nothing.
    const int base = server::retryDelayMs(policy, 5, 0);
    EXPECT_EQ(server::retryDelayMs(policy, 5, 0), base);
    EXPECT_GE(server::retryDelayMs(policy, 5, 1), base);
}

TEST(RetryBackoff, JitterIsDeterministicPerSeed)
{
    server::RetryPolicy a;
    a.jitterSeed = 7;
    server::RetryPolicy b;
    b.jitterSeed = 7;
    for (int attempt = 1; attempt <= 6; ++attempt) {
        EXPECT_EQ(server::retryDelayMs(a, attempt, 0),
                  server::retryDelayMs(b, attempt, 0));
    }
}

// ---------------------------------------------------------------------
// Memory tracking
// ---------------------------------------------------------------------

TEST(MemTrack, AddAndSubBalance)
{
    const std::uint64_t before = memtrack::currentBytes();
    memtrack::add(4096);
    EXPECT_EQ(memtrack::currentBytes(), before + 4096);
    memtrack::sub(4096);
    EXPECT_EQ(memtrack::currentBytes(), before);
}

} // namespace
} // namespace rex
