/**
 * @file
 * Tests for the resource governor and the fault-injection harness: the
 * budget axes (candidate ceilings exact and schedule-independent,
 * deadlines, memory caps, external cancellation), the ExhaustedBudget
 * path through the engine (partial statistics, never cached, budget
 * fields only on exhausted records), crash-safe cache entries
 * (checksummed, torn/corrupt entries evicted as misses), degraded-mode
 * behaviour at every fault point, and the client's retry backoff
 * arithmetic. This file runs under TSan in CI: the governor's whole
 * job is cross-thread cooperative cancellation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "axiomatic/checker.hh"
#include "base/memtrack.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/crashctx.hh"
#include "engine/faultinject.hh"
#include "engine/governor.hh"
#include "engine/pool.hh"
#include "engine/results.hh"
#include "engine/supervisor.hh"
#include "litmus/registry.hh"
#include "server/client.hh"

namespace rex {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
        ("rex_governor_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

engine::EngineConfig
plainConfig(unsigned jobs)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

/** Disarm the process-wide injector when a test body exits. */
struct FaultGuard {
    ~FaultGuard() { engine::faultInjector().configure(""); }
};

/** The builtin test with the largest candidate space (scanned once). */
const LitmusTest &
bigTest()
{
    static const std::string name = [] {
        const TestRegistry &registry = TestRegistry::instance();
        std::string best;
        std::size_t most = 0;
        for (const std::string &candidate : registry.names()) {
            CheckResult full = checkTest(registry.get(candidate),
                                         ModelParams::base(), false,
                                         false);
            if (full.candidates > most) {
                most = full.candidates;
                best = candidate;
            }
        }
        return best;
    }();
    return TestRegistry::instance().get(name);
}

// ---------------------------------------------------------------------
// Governor: axes
// ---------------------------------------------------------------------

TEST(Governor, CandidateCeilingIsExact)
{
    engine::Budget budget;
    budget.maxCandidates = 3;
    engine::Governor governor(budget);
    EXPECT_TRUE(governor.admit());
    EXPECT_TRUE(governor.admit());
    EXPECT_TRUE(governor.admit());
    EXPECT_FALSE(governor.tripped());
    // The fourth candidate trips the ceiling and is NOT counted.
    EXPECT_FALSE(governor.admit());
    EXPECT_TRUE(governor.tripped());
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Candidates);
    EXPECT_EQ(governor.candidatesVisited(), 3u);
    // Once tripped, every later admit is rejected without counting.
    EXPECT_FALSE(governor.admit());
    EXPECT_EQ(governor.candidatesVisited(), 3u);
}

TEST(Governor, CeilingTripIsDeterministicAcrossJobCounts)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);
    ASSERT_GT(full.candidates, 8u);
    const std::uint64_t ceiling = full.candidates / 2;

    engine::Budget budget;
    budget.maxCandidates = ceiling;

    // Serial.
    engine::Governor serial(budget);
    CheckResult one =
        checkTest(test, params, false, false, nullptr, &serial);
    EXPECT_EQ(one.exhaustedAxis, "candidates");
    EXPECT_FALSE(one.complete());
    EXPECT_EQ(one.candidates, ceiling);

    // Sharded over four workers: the shared-atomic admission admits
    // exactly min(total, ceiling) regardless of the schedule.
    engine::ThreadPool pool(4);
    engine::Governor sharded(budget);
    CheckResult four =
        checkTest(test, params, false, false, &pool, &sharded);
    EXPECT_EQ(four.exhaustedAxis, "candidates");
    EXPECT_EQ(four.candidates, ceiling);
    EXPECT_EQ(sharded.candidatesVisited(), ceiling);
}

TEST(Governor, CompletesUntouchedWhenBudgetIsRoomy)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);

    engine::Budget budget;
    budget.maxCandidates = full.candidates + 10;
    engine::Governor governor(budget);
    CheckResult res =
        checkTest(test, params, false, false, nullptr, &governor);
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.exhaustedAxis, "");
    EXPECT_EQ(res.candidates, full.candidates);
    EXPECT_EQ(res.consistent, full.consistent);
    EXPECT_EQ(res.witnesses, full.witnesses);
    EXPECT_EQ(res.observable, full.observable);
}

TEST(Governor, DeadlineTripsAndReportsPartialProgress)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    engine::Budget budget = engine::Budget::withDeadlineMs(20);
    engine::Governor governor(budget);
    // Re-check in a loop until the deadline lands: a single check may
    // complete inside 20ms, but the governor's clock keeps running.
    CheckResult res;
    while (!governor.tripped())
        res = checkTest(test, params, false, false, nullptr, &governor);
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Deadline);
    EXPECT_EQ(res.exhaustedAxis, "deadline");
    EXPECT_GE(governor.elapsedMicros(), 20000u);
    EXPECT_GT(governor.candidatesVisited(), 0u);
}

TEST(Governor, MemoryAxisComparesAgainstConstructionBaseline)
{
    engine::Budget budget;
    budget.maxHeapBytes = 1024;
    engine::Governor governor(budget);
    EXPECT_TRUE(governor.admit());
    memtrack::add(1 << 20);
    EXPECT_FALSE(governor.admit());
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Memory);
    memtrack::sub(1 << 20);
    // Latched: releasing the memory does not un-trip the budget.
    EXPECT_FALSE(governor.admit());
}

TEST(Governor, ExternalCancelStopsWithinFiftyMs)
{
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    engine::CancelToken external;
    engine::Governor governor(engine::Budget{}, &external);

    CheckResult res;
    std::thread worker([&] {
        while (!governor.tripped())
            res = checkTest(test, params, false, false, nullptr,
                            &governor);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto tripTime = std::chrono::steady_clock::now();
    external.trip(engine::BudgetAxis::Cancelled);
    worker.join();
    const auto latency =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - tripTime);
    EXPECT_LT(latency.count(), 50);
    EXPECT_EQ(res.exhaustedAxis, "cancelled");
    EXPECT_EQ(governor.trippedAxis(), engine::BudgetAxis::Cancelled);
}

TEST(Governor, StageIsRecorded)
{
    const LitmusTest &test = bigTest();
    engine::Budget budget;
    budget.maxCandidates = 1;
    engine::Governor governor(budget);
    checkTest(test, ModelParams::base(), false, false, nullptr,
              &governor);
    EXPECT_STREQ(governor.stageReached(), "enumerate");
}

// ---------------------------------------------------------------------
// Engine: the ExhaustedBudget path
// ---------------------------------------------------------------------

TEST(EngineBudget, ExhaustedRecordCarriesPartialStats)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 2;
    engine::JobRecord record =
        engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(record.verdict, "ExhaustedBudget");
    EXPECT_EQ(record.exhaustedAxis, "candidates");
    EXPECT_EQ(record.stage, "enumerate");
    EXPECT_EQ(record.candidates, 2u);
    const std::string json = record.toJson();
    EXPECT_NE(json.find("\"exhausted_axis\":\"candidates\""),
              std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"enumerate\""), std::string::npos);
}

TEST(EngineBudget, UnbudgetedRecordHasNoBudgetFields)
{
    engine::Engine engine(plainConfig(1));
    engine::JobRecord record =
        engine.verdictRecord(bigTest(), ModelParams::base());
    EXPECT_TRUE(record.exhaustedAxis.empty());
    const std::string json = record.toJson();
    EXPECT_EQ(json.find("exhausted_axis"), std::string::npos);
    EXPECT_EQ(json.find("\"stage\""), std::string::npos);
}

TEST(EngineBudget, ExhaustedVerdictsAreNeverCached)
{
    engine::EngineConfig config;
    config.jobs = 1;
    config.cacheEnabled = true;  // in-memory only: no cacheDir
    engine::Engine engine(config);

    engine::Budget tiny;
    tiny.maxCandidates = 1;
    engine::JobRecord partial =
        engine.verdictRecord(bigTest(), ModelParams::base(), tiny);
    EXPECT_EQ(partial.verdict, "ExhaustedBudget");
    EXPECT_EQ(engine.cache().entryCount(), 0u);

    // A complete check populates the cache as usual...
    engine::JobRecord complete =
        engine.verdictRecord(bigTest(), ModelParams::base());
    EXPECT_NE(complete.verdict, "ExhaustedBudget");
    EXPECT_EQ(engine.cache().entryCount(), 1u);

    // ...and a cached complete verdict satisfies any later budget:
    // same verdict, cache hit, no ExhaustedBudget even under a budget
    // the fresh check could never meet.
    engine::JobRecord served =
        engine.verdictRecord(bigTest(), ModelParams::base(), tiny);
    EXPECT_EQ(served.verdict, complete.verdict);
    EXPECT_EQ(served.candidates, complete.candidates);
    EXPECT_TRUE(served.cacheHit);
}

TEST(EngineBudget, CandidateCountersAreMonotonic)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 4;
    engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(engine.liveCandidates(), 0u);
    EXPECT_EQ(engine.candidatesEnumerated(), 4u);
    engine.verdictRecord(bigTest(), ModelParams::base(), budget);
    EXPECT_EQ(engine.candidatesEnumerated(), 8u);
}

TEST(EngineBudget, BudgetedVerdictMatchesRecord)
{
    engine::Engine engine(plainConfig(1));
    engine::Budget budget;
    budget.maxCandidates = 2;
    CheckResult res =
        engine.verdict(bigTest(), ModelParams::base(), budget);
    EXPECT_FALSE(res.complete());
    EXPECT_EQ(res.exhaustedAxis, "candidates");
    EXPECT_FALSE(res.observable);
}

// ---------------------------------------------------------------------
// Verdict cache: crash safety
// ---------------------------------------------------------------------

engine::VerdictKey
sampleKey()
{
    return engine::VerdictKey::make(bigTest(), ModelParams::base());
}

engine::CachedVerdict
sampleVerdict()
{
    engine::CachedVerdict value;
    value.observable = true;
    value.candidates = 123;
    value.consistent = 45;
    value.witnesses = 6;
    return value;
}

/** Path of the one on-disk entry under @p dir. */
fs::path
onlyEntry(const std::string &dir)
{
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".rexv")
            return entry.path();
    }
    return {};
}

TEST(CacheCrashSafety, FlippedByteIsDetectedEvictedAndMissed)
{
    const std::string dir = scratchDir("corrupt");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());

    // Flip one byte in the payload.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() - 5] ^= 0x20;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
    EXPECT_EQ(fresh.misses(), 1u);
    // The damaged entry is deleted, not retried forever.
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheCrashSafety, TruncatedEntryIsDetectedAndEvicted)
{
    const std::string dir = scratchDir("torn");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());
    fs::resize_file(path, fs::file_size(path) / 2);

    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheCrashSafety, InjectedTornWriteIsRejectedOnLoad)
{
    FaultGuard guard;
    const std::string dir = scratchDir("fault_write");
    {
        engine::VerdictCache cache(true, dir);
        engine::faultInjector().configure("cache-write:1.0:7");
        cache.store(sampleKey(), sampleVerdict());
        EXPECT_GT(engine::faultInjector().injected(
                      engine::FaultPoint::CacheWrite),
                  0u);
        engine::faultInjector().configure("");  // resets the counters
        // The writer's own in-memory table still serves the verdict.
        EXPECT_TRUE(cache.lookup(sampleKey()).has_value());
    }

    // A later process sees the torn file: checksum rejects it.
    engine::VerdictCache fresh(true, dir);
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    EXPECT_EQ(fresh.corruptEvictions(), 1u);
}

TEST(CacheCrashSafety, InjectedReadFaultIsAMissNotAnEviction)
{
    FaultGuard guard;
    const std::string dir = scratchDir("fault_read");
    {
        engine::VerdictCache cache(true, dir);
        cache.store(sampleKey(), sampleVerdict());
    }
    fs::path path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());

    engine::VerdictCache fresh(true, dir);
    engine::faultInjector().configure("cache-read:1.0:7");
    EXPECT_FALSE(fresh.lookup(sampleKey()).has_value());
    engine::faultInjector().configure("");
    // A transient read failure must not delete the (healthy) entry.
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(fresh.corruptEvictions(), 0u);
    std::optional<engine::CachedVerdict> value =
        fresh.lookup(sampleKey());
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->candidates, 123u);
}

// ---------------------------------------------------------------------
// Degraded modes: sink, pool
// ---------------------------------------------------------------------

TEST(FaultDegradation, SinkWriteFaultDropsAndCounts)
{
    FaultGuard guard;
    const std::string path =
        scratchDir("sink") + "/results.jsonl";
    engine::ResultsSink sink;
    sink.open(path);
    engine::JobRecord record;
    record.test = "t";
    record.variant = "base";
    record.verdict = "Allowed";

    engine::faultInjector().configure("sink-write:1.0:3");
    sink.append(record);
    engine::faultInjector().configure("");
    sink.append(record);
    sink.close();

    EXPECT_EQ(sink.droppedRecords(), 1u);
    EXPECT_EQ(sink.records(), 1u);
    std::ifstream in(path);
    std::string line, last;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            ++lines;
            last = line;
        }
    }
    // The dropped record never reached the file, and the survivor is a
    // whole line — no torn output.
    EXPECT_EQ(lines, 1u);
    EXPECT_NE(last.find("\"verdict\":\"Allowed\""), std::string::npos);
}

TEST(FaultDegradation, PoolSpawnFaultRunsTasksInline)
{
    FaultGuard guard;
    engine::faultInjector().configure("pool-spawn:1.0:5");
    engine::ThreadPool pool(2);
    std::atomic<int> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 1; i <= 50; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; return i; }));
    for (int i = 1; i <= 50; ++i)
        EXPECT_EQ(futures[i - 1].get(), i);
    EXPECT_EQ(sum.load(), 50 * 51 / 2);
    EXPECT_GT(
        engine::faultInjector().injected(engine::FaultPoint::PoolSpawn),
        0u);
}

TEST(FaultDegradation, BudgetedCheckSurvivesPoolSpawnFault)
{
    FaultGuard guard;
    const LitmusTest &test = bigTest();
    const ModelParams params = ModelParams::base();
    CheckResult full = checkTest(test, params, false, false);

    engine::faultInjector().configure("pool-spawn:0.5:11");
    engine::ThreadPool pool(4);
    CheckResult degraded =
        checkTest(test, params, false, false, &pool);
    engine::faultInjector().configure("");
    EXPECT_EQ(degraded.candidates, full.candidates);
    EXPECT_EQ(degraded.consistent, full.consistent);
    EXPECT_EQ(degraded.observable, full.observable);
}

// ---------------------------------------------------------------------
// The fault injector itself
// ---------------------------------------------------------------------

TEST(FaultInjector, UnarmedNeverFails)
{
    FaultGuard guard;
    engine::faultInjector().configure("");
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(engine::faultInjector().shouldFail(
            engine::FaultPoint::SinkWrite));
    }
}

TEST(FaultInjector, DecisionSequenceIsDeterministic)
{
    FaultGuard guard;
    auto sequence = [] {
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i) {
            out.push_back(engine::faultInjector().shouldFail(
                engine::FaultPoint::SockSend));
        }
        return out;
    };
    engine::faultInjector().configure("sock-send:0.5:42");
    std::vector<bool> first = sequence();
    engine::faultInjector().configure("sock-send:0.5:42");
    std::vector<bool> second = sequence();
    EXPECT_EQ(first, second);
    // ~0.5 probability: both outcomes appear in 64 draws.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
    // A different seed yields a different sequence.
    engine::faultInjector().configure("sock-send:0.5:43");
    EXPECT_NE(sequence(), first);
}

TEST(FaultInjector, ProbabilityOneAlwaysProbabilityZeroNever)
{
    FaultGuard guard;
    engine::faultInjector().configure("cache-read:1.0:1");
    for (int i = 0; i < 32; ++i) {
        EXPECT_TRUE(engine::faultInjector().shouldFail(
            engine::FaultPoint::CacheRead));
    }
    EXPECT_EQ(
        engine::faultInjector().checked(engine::FaultPoint::CacheRead),
        32u);
    EXPECT_EQ(
        engine::faultInjector().injected(engine::FaultPoint::CacheRead),
        32u);
    engine::faultInjector().configure("cache-read:0.0:1");
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(engine::faultInjector().shouldFail(
            engine::FaultPoint::CacheRead));
    }
}

TEST(FaultInjector, MalformedClausesAreSkipped)
{
    FaultGuard guard;
    engine::faultInjector().configure(
        "nonsense:1.0:1,cache-write:not-a-number:2,sock-send:1.0:3");
    EXPECT_FALSE(
        engine::faultInjector().armed(engine::FaultPoint::CacheWrite));
    EXPECT_TRUE(
        engine::faultInjector().armed(engine::FaultPoint::SockSend));
}

// ---------------------------------------------------------------------
// Client retry backoff arithmetic
// ---------------------------------------------------------------------

TEST(RetryBackoff, GrowsExponentiallyWithinJitterBounds)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    policy.maxDelayMs = 2000;
    // Attempt k's nominal delay is 100 * 2^(k-1), +-25% jitter.
    for (int attempt = 1; attempt <= 4; ++attempt) {
        const int nominal = 100 << (attempt - 1);
        const int delay = server::retryDelayMs(policy, attempt, 0);
        EXPECT_GE(delay, nominal * 3 / 4);
        EXPECT_LE(delay, nominal * 5 / 4);
    }
}

TEST(RetryBackoff, CapsAtMaxDelay)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    policy.maxDelayMs = 500;
    const int delay = server::retryDelayMs(policy, 10, 0);
    EXPECT_LE(delay, 500 * 5 / 4);
    EXPECT_GE(delay, 500 * 3 / 4);
}

TEST(RetryBackoff, RetryAfterIsAFloorNeverShortened)
{
    server::RetryPolicy policy;
    policy.initialDelayMs = 100;
    EXPECT_GE(server::retryDelayMs(policy, 1, 10), 10000);
    // A Retry-After below the computed backoff changes nothing.
    const int base = server::retryDelayMs(policy, 5, 0);
    EXPECT_EQ(server::retryDelayMs(policy, 5, 0), base);
    EXPECT_GE(server::retryDelayMs(policy, 5, 1), base);
}

TEST(RetryBackoff, JitterIsDeterministicPerSeed)
{
    server::RetryPolicy a;
    a.jitterSeed = 7;
    server::RetryPolicy b;
    b.jitterSeed = 7;
    for (int attempt = 1; attempt <= 6; ++attempt) {
        EXPECT_EQ(server::retryDelayMs(a, attempt, 0),
                  server::retryDelayMs(b, attempt, 0));
    }
}

// ---------------------------------------------------------------------
// Supervised workers: crash containment, quarantine, hard deadlines
// ---------------------------------------------------------------------

/** A small builtin carrying its source text (any registry test does —
 *  the registry parses them all from text). */
const LitmusTest &
smallTest()
{
    const LitmusTest &test = TestRegistry::instance().names().empty()
        ? bigTest()
        : TestRegistry::instance().get(
              TestRegistry::instance().names().front());
    EXPECT_FALSE(test.sourceText.empty());
    return test;
}

engine::SupervisorConfig
supervisorConfig(unsigned workers)
{
    engine::SupervisorConfig config;
    config.workers = workers;
    config.respawnBackoffMs = 5;  // keep crash-loop tests fast
    config.respawnBackoffMaxMs = 50;
    return config;
}

TEST(Supervisor, WorkerVerdictMatchesInThreadCheck)
{
    const LitmusTest &test = smallTest();
    const ModelParams params = ModelParams::base();
    const CheckResult direct = checkTest(test, params, true, false);

    engine::Supervisor supervisor(supervisorConfig(2));
    const engine::SupervisedOutcome outcome = supervisor.run(
        test.sourceText, test.name, params.name(), "key-parity", nullptr);
    ASSERT_EQ(outcome.kind, engine::SupervisedOutcome::Kind::Ok);
    EXPECT_EQ(outcome.verdict.observable, direct.observable);
    EXPECT_EQ(outcome.verdict.candidates, direct.candidates);
    EXPECT_EQ(outcome.verdict.consistent, direct.consistent);
    EXPECT_EQ(outcome.verdict.witnesses, direct.witnesses);
    EXPECT_EQ(supervisor.crashes(), 0u);
    EXPECT_EQ(supervisor.liveWorkers(), 2u);
}

TEST(Supervisor, InjectedCrashIsContainedAndTheSlotRespawns)
{
    FaultGuard guard;
    const LitmusTest &test = smallTest();
    engine::Supervisor supervisor(supervisorConfig(1));

    engine::faultInjector().configure("worker-crash:1.0:7");
    const engine::SupervisedOutcome crashed = supervisor.run(
        test.sourceText, test.name, "base", "key-crash", nullptr);
    engine::faultInjector().configure("");

    ASSERT_EQ(crashed.kind, engine::SupervisedOutcome::Kind::Crashed);
    EXPECT_EQ(crashed.signal, "SIGSEGV");
    EXPECT_EQ(crashed.crashes, 1u);
    EXPECT_EQ(supervisor.crashes(), 1u);

    // The supervisor (this process) survived; the slot respawns and
    // the next job of the same key succeeds.
    const engine::SupervisedOutcome retried = supervisor.run(
        test.sourceText, test.name, "base", "key-crash", nullptr);
    ASSERT_EQ(retried.kind, engine::SupervisedOutcome::Kind::Ok);
    EXPECT_GE(supervisor.respawns(), 1u);
    const auto bySignal = supervisor.crashesBySignal();
    ASSERT_EQ(bySignal.size(), 1u);
    EXPECT_EQ(bySignal[0].first, "SIGSEGV");
    EXPECT_EQ(bySignal[0].second, 1u);
}

TEST(Supervisor, QuarantineTripsAfterThresholdCrashes)
{
    FaultGuard guard;
    const LitmusTest &test = smallTest();
    engine::SupervisorConfig config = supervisorConfig(1);
    config.crashQuarantine = 2;
    engine::Supervisor supervisor(config);

    engine::faultInjector().configure("worker-crash:1.0:7");
    for (int crash = 0; crash < 2; ++crash) {
        const engine::SupervisedOutcome outcome = supervisor.run(
            test.sourceText, test.name, "base", "key-quar", nullptr);
        ASSERT_EQ(outcome.kind,
                  engine::SupervisedOutcome::Kind::Crashed);
    }
    // Third time: refused without dispatch — still refused after the
    // injector is disarmed, because quarantine is about the ledger,
    // not the fault.
    engine::faultInjector().configure("");
    const engine::SupervisedOutcome refused = supervisor.run(
        test.sourceText, test.name, "base", "key-quar", nullptr);
    ASSERT_EQ(refused.kind,
              engine::SupervisedOutcome::Kind::Quarantined);
    EXPECT_EQ(refused.signal, "SIGSEGV");
    EXPECT_EQ(refused.crashes, 2u);
    EXPECT_EQ(supervisor.quarantinedServed(), 1u);
    EXPECT_EQ(supervisor.quarantinedKeys(), 1u);

    // Other keys are unaffected.
    const engine::SupervisedOutcome other = supervisor.run(
        test.sourceText, test.name, "base", "key-other", nullptr);
    EXPECT_EQ(other.kind, engine::SupervisedOutcome::Kind::Ok);
}

TEST(Supervisor, HangingWorkerIsKilledAtTheHardDeadline)
{
    FaultGuard guard;
    const LitmusTest &test = smallTest();
    engine::SupervisorConfig config = supervisorConfig(1);
    config.killGraceMs = 300;
    engine::Supervisor supervisor(config);

    engine::Budget budget;
    budget.deadlineMicros = 200 * 1000;

    engine::faultInjector().configure("worker-hang:1.0:7");
    const auto start = std::chrono::steady_clock::now();
    const engine::SupervisedOutcome outcome = supervisor.run(
        test.sourceText, test.name, "base", "key-hang", &budget);
    engine::faultInjector().configure("");
    const auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    ASSERT_EQ(outcome.kind, engine::SupervisedOutcome::Kind::Crashed);
    EXPECT_EQ(outcome.signal, "SIGKILL");
    // Killed no earlier than the cooperative deadline, and well within
    // deadline + grace (plus slack for a loaded CI box).
    EXPECT_GE(elapsedMs, 200);
    EXPECT_LT(elapsedMs, 5000);
    // A hang SIGKILL charges the ledger like any other crash.
    EXPECT_EQ(outcome.crashes, 1u);
}

TEST(Supervisor, EngineEmitsCrashedWorkerRecordAndRecovers)
{
    FaultGuard guard;
    const LitmusTest &test = smallTest();
    engine::EngineConfig config = plainConfig(1);
    config.workers = 1;
    engine::Engine engine(config);

    engine::faultInjector().configure("worker-crash:1.0:7");
    engine::JobRecord crashed =
        engine.verdictRecord(test, ModelParams::base());
    engine::faultInjector().configure("");

    EXPECT_EQ(crashed.verdict, "CrashedWorker");
    EXPECT_EQ(crashed.workerSignal, "SIGSEGV");
    EXPECT_EQ(crashed.crashes, 1u);
    const std::string json = crashed.toJson();
    EXPECT_NE(json.find("\"verdict\":\"CrashedWorker\""),
              std::string::npos);
    EXPECT_NE(json.find("\"signal\":\"SIGSEGV\""), std::string::npos);
    EXPECT_NE(json.find("\"crashes\":1"), std::string::npos);

    // Crashed results are never cached: the retry really re-checks,
    // in a respawned worker, and succeeds.
    engine::JobRecord retried =
        engine.verdictRecord(test, ModelParams::base());
    EXPECT_FALSE(retried.cacheHit);
    EXPECT_TRUE(retried.verdict == "Allowed" ||
                retried.verdict == "Forbidden");
    EXPECT_TRUE(retried.workerSignal.empty());
    EXPECT_EQ(retried.toJson().find("\"signal\""), std::string::npos);
}

TEST(Supervisor, SupervisedVerdictsMatchInThreadVerdictsAcrossRegistry)
{
    // A slice of the registry through both paths; records must agree
    // field-for-field (JSONL modulo wall time and cache flag).
    engine::EngineConfig inThread = plainConfig(1);
    engine::Engine plain(inThread);
    engine::EngineConfig isolated = plainConfig(1);
    isolated.workers = 2;
    engine::Engine supervised(isolated);

    const TestRegistry &registry = TestRegistry::instance();
    std::vector<std::string> names = registry.names();
    names.resize(std::min<std::size_t>(names.size(), 10));
    for (const std::string &name : names) {
        const LitmusTest &test = registry.get(name);
        engine::JobRecord a =
            plain.verdictRecord(test, ModelParams::base());
        engine::JobRecord b =
            supervised.verdictRecord(test, ModelParams::base());
        a.wallMicros = b.wallMicros = 0;
        EXPECT_EQ(a.toJson(), b.toJson()) << name;
    }
}

// ---------------------------------------------------------------------
// Crash attribution (the fatal-signal handler)
// ---------------------------------------------------------------------

TEST(CrashContext, HandlerNamesTestVariantAndStageOnFatalSignal)
{
    int pipeFds[2];
    ASSERT_EQ(::pipe(pipeFds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: route stderr into the pipe, set up attribution as the
        // engine would, and die the way a checker bug would.
        ::close(pipeFds[0]);
        ::dup2(pipeFds[1], STDERR_FILENO);
        engine::installCrashAttributionHandler();
        engine::crashContextSetJob("MP+dmb+svc", "base");
        engine::crashContextSetStage("enumerate");
        std::raise(SIGSEGV);
        ::_exit(0);  // unreachable
    }
    ::close(pipeFds[1]);
    std::string stderrText;
    char buffer[512];
    ssize_t got = 0;
    while ((got = ::read(pipeFds[0], buffer, sizeof(buffer))) > 0)
        stderrText.append(buffer, static_cast<std::size_t>(got));
    ::close(pipeFds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);
    EXPECT_NE(stderrText.find("rex: fatal SIGSEGV"), std::string::npos)
        << stderrText;
    EXPECT_NE(stderrText.find("test 'MP+dmb+svc'"), std::string::npos);
    EXPECT_NE(stderrText.find("variant 'base'"), std::string::npos);
    EXPECT_NE(stderrText.find("stage 'enumerate'"), std::string::npos);
}

// ---------------------------------------------------------------------
// Verdict cache: concurrent multi-process writers
// ---------------------------------------------------------------------

TEST(CacheMultiProcess, ConcurrentWritersProduceNoTornEntries)
{
    const std::string dir = scratchDir("hammer");
    constexpr int kKeys = 48;
    constexpr int kRounds = 40;

    // Hand-built keys with deterministic per-key content, so whichever
    // process wins any write race publishes identical bytes.
    auto keyFor = [](int i) {
        engine::VerdictKey key;
        key.text = "hammer-key-" + std::to_string(i) + "\n";
        key.hash = 0x1000 + static_cast<std::uint64_t>(i);
        return key;
    };
    auto verdictFor = [](int i) {
        engine::CachedVerdict value;
        value.observable = (i % 2) == 0;
        value.candidates = static_cast<std::uint64_t>(100 + i);
        value.consistent = static_cast<std::uint64_t>(i);
        return value;
    };

    // Two child processes hammer the same directory — with a byte cap
    // low enough that both run the eviction trim continuously, the
    // worst case for cross-process index races.
    pid_t children[2];
    for (pid_t &child : children) {
        child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            engine::VerdictCache mine(true, dir, 16 * 1024);
            for (int round = 0; round < kRounds; ++round) {
                for (int i = 0; i < kKeys; ++i)
                    mine.store(keyFor(i), verdictFor(i));
            }
            ::_exit(0);
        }
    }
    for (pid_t child : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    // A fresh cache over the survivors: every entry present must load
    // clean (correct checksum AND correct content); evicted ones are
    // plain misses. Zero corruption is the contract.
    engine::VerdictCache fresh(true, dir);
    int present = 0;
    for (int i = 0; i < kKeys; ++i) {
        std::optional<engine::CachedVerdict> loaded =
            fresh.lookup(keyFor(i));
        if (!loaded)
            continue;
        ++present;
        EXPECT_EQ(loaded->observable, (i % 2) == 0);
        EXPECT_EQ(loaded->candidates,
                  static_cast<std::uint64_t>(100 + i));
    }
    EXPECT_EQ(fresh.corruptEvictions(), 0u);
    EXPECT_GT(present, 0);
    // No temp files leaked past the final rename.
    int leftovers = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().find(".tmp") !=
                std::string::npos) {
            ++leftovers;
        }
    }
    EXPECT_EQ(leftovers, 0);
}

// ---------------------------------------------------------------------
// Memory tracking
// ---------------------------------------------------------------------

TEST(MemTrack, AddAndSubBalance)
{
    const std::uint64_t before = memtrack::currentBytes();
    memtrack::add(4096);
    EXPECT_EQ(memtrack::currentBytes(), before + 4096);
    memtrack::sub(4096);
    EXPECT_EQ(memtrack::currentBytes(), before);
}

} // namespace
} // namespace rex
