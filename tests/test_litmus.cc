/**
 * @file
 * Unit tests for the litmus representation, the text-format parser, and
 * the built-in registry's integrity.
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "axiomatic/params.hh"
#include "base/logging.hh"
#include "litmus/herd_parser.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

TEST(Locations, AddressMapping)
{
    EXPECT_EQ(locationAddress(0), 0x1000u);
    EXPECT_EQ(locationAddress(1), 0x2000u);
    EXPECT_EQ(addressToLocation(0x1000, 2), LocationId{0});
    EXPECT_EQ(addressToLocation(0x2000, 2), LocationId{1});
    EXPECT_FALSE(addressToLocation(0, 2).has_value());
    EXPECT_FALSE(addressToLocation(0x3000, 2).has_value());
    EXPECT_FALSE(addressToLocation(0x1008, 2).has_value());
}

TEST(Parser, FullTest)
{
    LitmusTest test = parseLitmus(
        "name: demo\n"
        "desc: a demo\n"
        "init: *x=0; *y=5; 0:X1=x; 1:X3=y; 1:X0=7; 1:PSTATE.EL=1;"
        " 1:PSTATE.I=1; 1:EOIMode=1\n"
        "thread 0:\n"
        "    MOV X0,#1\n"
        "    STR X0,[X1]\n"
        "thread 1:\n"
        "    LDR X2,[X3]\n"
        "handler 1:\n"
        "    ERET\n"
        "forbidden: 1:X2=0 & *x=1\n"
        "variant SEA_R: allowed\n");
    EXPECT_EQ(test.name, "demo");
    EXPECT_EQ(test.description, "a demo");
    ASSERT_EQ(test.threads.size(), 2u);
    ASSERT_EQ(test.locations.size(), 2u);
    EXPECT_EQ(test.initValues[test.locationId("y")], 5u);
    EXPECT_EQ(test.threads[0].initRegs[1], locationAddress(0));
    EXPECT_EQ(test.threads[1].initRegs[0], 7u);
    EXPECT_EQ(test.threads[1].initialEl, 1);
    EXPECT_TRUE(test.threads[1].initialMasked);
    EXPECT_TRUE(test.threads[1].eoiMode1);
    EXPECT_FALSE(test.expectedAllowed);
    ASSERT_EQ(test.finalCond.atoms.size(), 2u);
    EXPECT_EQ(test.finalCond.atoms[0].kind, CondAtom::Kind::Register);
    EXPECT_EQ(test.finalCond.atoms[1].kind, CondAtom::Kind::Memory);
    ASSERT_EQ(test.variantAllowed.count("SEA_R"), 1u);
    EXPECT_TRUE(test.variantAllowed.at("SEA_R"));
    EXPECT_EQ(test.threads[0].handler.code.size(), 0u);
    EXPECT_EQ(test.threads[1].handler.code.size(), 1u);
}

TEST(Parser, InterruptDirective)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "L:\n"
        "    NOP\n"
        "handler 0:\n"
        "    LDR X0,[X1]\n"
        "interrupt 0 at L intid 5\n"
        "allowed: 0:X0=0\n");
    ASSERT_TRUE(test.threads[0].interruptAt.has_value());
    EXPECT_EQ(*test.threads[0].interruptAt, "L");
    EXPECT_EQ(test.threads[0].interruptIntid, 5u);
    EXPECT_FALSE(test.threads[0].sgiReceiver);
}

TEST(Parser, SgiReceiverAutoDetection)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 1:X1=x\n"
        "thread 0:\n"
        "    MOV X2,#1,LSL #40\n"
        "    MSR ICC_SGI1R_EL1,X2\n"
        "thread 1:\n"
        "    NOP\n"
        "handler 1:\n"
        "    LDR X0,[X1]\n"
        "allowed: 1:X0=0\n");
    EXPECT_TRUE(test.generatesSgis());
    EXPECT_FALSE(test.threads[0].sgiReceiver);  // no handler
    EXPECT_TRUE(test.threads[1].sgiReceiver);
}

TEST(Parser, ConditionWithSlashBackslashConjunction)
{
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "allowed: 0:X0=0 /\\ *x=0\n");
    EXPECT_EQ(test.finalCond.atoms.size(), 2u);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(parseLitmus(""), FatalError);
    EXPECT_THROW(parseLitmus("name: x\n"), FatalError);  // no condition
    EXPECT_THROW(parseLitmus(
        "name: x\ninit: bogus\nthread 0:\n NOP\nallowed: *x=0\n"),
        FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\nthread zz:\n NOP\nallowed: *x=0\n"), FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\n NOP\nallowed: *x=0\n"), FatalError);  // outside section
    EXPECT_THROW(parseLitmus(
        "name: x\nthread 0:\n NOP\nvariant X allowed\nallowed: *x=0\n"),
        FatalError);
}

TEST(Parser, TruncatedInputsDiagnoseCleanly)
{
    // Truncated init entries.
    EXPECT_THROW(parseLitmus(
        "name: x\ninit: 0:X1=\nthread 0:\n NOP\nallowed: *x=0\n"),
        FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\ninit: *x\nthread 0:\n NOP\nallowed: *x=0\n"),
        FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\ninit: 0:\nthread 0:\n NOP\nallowed: *x=0\n"),
        FatalError);
    // Unterminated/truncated conditions.
    EXPECT_THROW(parseLitmus(
        "name: x\nthread 0:\n NOP\nallowed: 0:X0\n"), FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\nthread 0:\n NOP\nallowed: 0:X0=\n"), FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\nthread 0:\n NOP\nvariant ExS\n"), FatalError);
}

TEST(Parser, ResourceBoundsAreEnforced)
{
    // A huge thread id must be refused, not used as a resize() count.
    EXPECT_THROW(parseLitmus(
        "name: x\ninit: 999999999:X1=x\nthread 0:\n NOP\n"
        "allowed: *x=0\n"), FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\nthread 999999999:\n NOP\nallowed: *x=0\n"),
        FatalError);
    EXPECT_THROW(parseLitmus(
        "name: x\ninterrupt 999999999 at L0\nthread 0:\n NOP\n"
        "allowed: *x=0\n"), FatalError);

    // Program size cap.
    std::string big = "name: x\nthread 0:\n";
    for (std::size_t i = 0; i <= kMaxProgramInstructions; ++i)
        big += "    MOV X0,#1\n";
    big += "allowed: *x=0\n";
    EXPECT_THROW(parseLitmus(big), FatalError);

    // Location count cap.
    std::string locs = "name: x\ninit:";
    for (std::size_t i = 0; i <= kMaxLocations; ++i)
        locs += " *loc" + std::to_string(i) + "=0;";
    locs += "\nthread 0:\n NOP\nallowed: *loc0=0\n";
    EXPECT_THROW(parseLitmus(locs), FatalError);
}

TEST(Parser, UnknownLocationInConditionIsCreated)
{
    // Referencing a fresh location in the condition interns it with
    // initial value 0 (convenient for tests that only read).
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: 0:X1=x\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "allowed: *x=0\n");
    EXPECT_EQ(test.locations.size(), 1u);
    EXPECT_EQ(test.initValues[0], 0u);
}

TEST(HerdFormat, ClassicMpParsesAndChecks)
{
    const char *herd = R"(AArch64 MP-herd
"classic message passing, herd format"
{
0:X1=x; 0:X3=y;
1:X1=y; 1:X3=x;
x=0; y=0;
}
 P0          | P1          ;
 MOV X0,#1   | LDR X0,[X1] ;
 STR X0,[X1] | LDR X2,[X3] ;
 DMB SY      |             ;
 MOV X2,#1   |             ;
 STR X2,[X3] |             ;
exists (1:X0=1 /\ 1:X2=0)
)";
    ASSERT_TRUE(looksLikeHerdFormat(herd));
    LitmusTest test = parseLitmus(herd);
    EXPECT_EQ(test.name, "MP-herd");
    EXPECT_EQ(test.description,
              "classic message passing, herd format");
    ASSERT_EQ(test.threads.size(), 2u);
    EXPECT_EQ(test.threads[0].program.code.size(), 5u);
    EXPECT_EQ(test.threads[1].program.code.size(), 2u);
    EXPECT_TRUE(test.expectedAllowed);
    EXPECT_EQ(test.finalCond.atoms.size(), 2u);

    // The parsed test behaves like the built-in MP+dmb.sy+po: allowed.
    EXPECT_TRUE(isAllowed(test, ModelParams::base()));
}

TEST(HerdFormat, NegatedExistsIsForbidden)
{
    const char *herd =
        "AArch64 CoWW-herd\n"
        "{ x=0; 0:X1=x; }\n"
        " P0          ;\n"
        " MOV X0,#1   ;\n"
        " STR X0,[X1] ;\n"
        " MOV X2,#2   ;\n"
        " STR X2,[X1] ;\n"
        "~exists ([x]=1)\n";
    LitmusTest test = parseLitmus(herd);
    EXPECT_FALSE(test.expectedAllowed);
    ASSERT_EQ(test.finalCond.atoms.size(), 1u);
    EXPECT_EQ(test.finalCond.atoms[0].kind, CondAtom::Kind::Memory);
    EXPECT_FALSE(isAllowed(test, ModelParams::base()));
}

TEST(HerdFormat, UnsupportedConstructsRejected)
{
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ x=0; }\n P0 ;\n NOP ;\n"
        "exists (0:X0=0 \\/ 0:X1=1)\n"), FatalError);
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ x=0; }\n P0 ;\n NOP ;\n"
        "forall (0:X0=0)\n"), FatalError);
}

TEST(HerdFormat, MalformedInputsDiagnoseCleanly)
{
    // Unterminated init block: program rows land in the init phase.
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ x=0;\n P0 ;\n NOP ;\nexists (0:X0=0)\n"),
        FatalError);
    // Garbage between header and init.
    EXPECT_THROW(parseLitmus(
        "AArch64 t\nwhat is this\n{ x=0; }\n P0 ;\n NOP ;\n"
        "exists (0:X0=0)\n"), FatalError);
    // Unterminated condition parenthesis.
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ x=0; }\n P0 ;\n NOP ;\nexists (0:X0=0\n"),
        FatalError);
    // No condition at all.
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ x=0; }\n P0 ;\n NOP ;\n"), FatalError);
    // Huge thread id in init.
    EXPECT_THROW(parseLitmus(
        "AArch64 t\n{ 999999999:X1=x; }\n P0 ;\n NOP ;\n"
        "exists (0:X0=0)\n"), FatalError);
}

/**
 * Parsing arbitrary mutilations of valid inputs must either succeed or
 * throw FatalError — never crash, hang, or throw anything else. This is
 * the wire-input contract rexd relies on to turn parser complaints into
 * 400 responses.
 */
TEST(ParserFuzz, TruncationsAndCorruptionsNeverCrash)
{
    const std::string native =
        TestRegistry::instance().sourceText("MP+dmb.sy+addr");
    const std::string herd =
        "AArch64 MP-fuzz\n"
        "{ x=0; y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
        " P0          | P1          ;\n"
        " MOV X0,#1   | LDR X0,[X1] ;\n"
        " STR X0,[X1] | LDR X2,[X3] ;\n"
        "exists (1:X0=1 /\\ 1:X2=0)\n";

    auto parseSafely = [](const std::string &text) {
        try {
            parseLitmus(text);
        } catch (const FatalError &) {
            // The contract: diagnose, don't crash.
        }
    };

    for (const std::string &seed : {native, herd}) {
        // Every prefix.
        for (std::size_t len = 0; len <= seed.size(); ++len)
            parseSafely(seed.substr(0, len));
        // Single-byte corruption at every offset.
        for (std::size_t i = 0; i < seed.size(); ++i) {
            for (char c : {'\0', '\xff', '=', ':', ';', '|', '}'}) {
                std::string mutated = seed;
                mutated[i] = c;
                parseSafely(mutated);
            }
        }
        // Single-byte deletion at every offset.
        for (std::size_t i = 0; i < seed.size(); ++i) {
            std::string mutated = seed;
            mutated.erase(i, 1);
            parseSafely(mutated);
        }
    }
}

TEST(Registry, LookupAndSuites)
{
    const TestRegistry &registry = TestRegistry::instance();
    EXPECT_TRUE(registry.has("SB+dmb.sy+eret"));
    EXPECT_FALSE(registry.has("not-a-test"));
    EXPECT_THROW(registry.get("not-a-test"), FatalError);
    EXPECT_EQ(registry.get("MP+dmb.sy+fault").name, "MP+dmb.sy+fault");

    std::size_t total = 0;
    for (const char *suite :
         {"core", "exceptions", "sea", "gic", "generated"})
        total += registry.suite(suite).size();
    EXPECT_EQ(total, registry.all().size());
}

TEST(Registry, NamesAreUniqueAndSorted)
{
    auto names = TestRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) ==
                names.end());
}

TEST(Registry, PaperFigureTestsPresent)
{
    const TestRegistry &registry = TestRegistry::instance();
    for (const char *name : {
             "SB+dmb.sy+eret",              // Fig. 4
             "MP+dmb.sy+ctrlsvc",           // Fig. 5
             "SB+dmb.sy+rfisvc-addr",       // Fig. 6
             "MP.EL1+dmb.sy+dataesrsvc",    // Fig. 7 top
             "MP+dmb.sy+ctrlelr",           // Fig. 7 bottom
             "MP+dmb.sy+fault",             // Fig. 8 top
             "MP+dmb.sy+int",               // Fig. 8 bottom
             "MP+dmb.sy+svc",               // §3.2.2
             "MPviaSGIEIOmode1sequence",    // Fig. 11
             "MPviaSGI",                    // Fig. 12
             "RCU-MP",                      // Fig. 13
         }) {
        EXPECT_TRUE(registry.has(name)) << name;
    }
}

TEST(Files, ShippedLitmusFilesParseAndMatchVerdicts)
{
    for (const char *file : {"SB+dmb.sy+eret.litmus",
                             "MP+dmb.sy+fault.litmus",
                             "MPviaSGI.litmus"}) {
        LitmusTest test = parseLitmusFile(
            std::string(REX_LITMUS_DIR) + "/" + file);
        EXPECT_FALSE(test.name.empty()) << file;
        EXPECT_FALSE(test.threads.empty()) << file;
        EXPECT_FALSE(test.finalCond.atoms.empty()) << file;
    }
    EXPECT_THROW(parseLitmusFile("/nonexistent.litmus"), FatalError);
}

TEST(Registry, VariantNamesAreKnown)
{
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        for (const auto &[variant, allowed] : test->variantAllowed) {
            EXPECT_NO_THROW(ModelParams::byName(variant))
                << test->name << " declares unknown variant " << variant;
        }
    }
}

} // namespace
} // namespace rex
