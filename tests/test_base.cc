/**
 * @file
 * Unit tests for the base utilities: logging discipline and string
 * helpers.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("library bug"), PanicError);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(rexAssert(true, "fine"));
    EXPECT_THROW(rexAssert(false, "boom"), PanicError);
}

TEST(Logging, ThresholdRoundTrips)
{
    LogLevel old = logThreshold();
    setLogThreshold(LogLevel::Error);
    EXPECT_EQ(logThreshold(), LogLevel::Error);
    setLogThreshold(old);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, Split)
{
    auto fields = split("a;b;;c", ';');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(split("", ';').size(), 1u);
}

TEST(Strings, SplitWhitespace)
{
    auto tokens = splitWhitespace("  one\ttwo \n three ");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[1], "two");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, Case)
{
    EXPECT_EQ(toUpper("dmb sy"), "DMB SY");
    EXPECT_EQ(toLower("ERET"), "eret");
}

TEST(Strings, Affixes)
{
    EXPECT_TRUE(startsWith("thread 0:", "thread "));
    EXPECT_FALSE(startsWith("th", "thread"));
    EXPECT_TRUE(endsWith("x.cat", ".cat"));
    EXPECT_FALSE(endsWith("cat", ".cat"));
}

TEST(Strings, ParseIntegerDecimal)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInteger("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInteger("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(parseInteger("0", v));
    EXPECT_EQ(v, 0);
}

TEST(Strings, ParseIntegerHexAndBinary)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInteger("0xFF", v));
    EXPECT_EQ(v, 255);
    EXPECT_TRUE(parseInteger("0b101", v));
    EXPECT_EQ(v, 5);
    EXPECT_TRUE(parseInteger("0xf", v));
    EXPECT_EQ(v, 15);
}

TEST(Strings, ParseIntegerRejectsGarbage)
{
    std::int64_t v = 0;
    EXPECT_FALSE(parseInteger("", v));
    EXPECT_FALSE(parseInteger("x", v));
    EXPECT_FALSE(parseInteger("12z", v));
    EXPECT_FALSE(parseInteger("-", v));
    EXPECT_FALSE(parseInteger("0x", v));
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d/%s", 3, "x"), "3/x");
    EXPECT_EQ(format("%s", ""), "");
}

} // namespace
} // namespace rex
