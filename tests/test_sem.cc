/**
 * @file
 * Unit tests for the thread semantics: trace enumeration, dependency
 * tracking (addr/data/ctrl), exception splicing, §3.4 writeback rules,
 * interrupt plans and DAIF masking.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "litmus/parser.hh"
#include "sem/exception.hh"
#include "sem/executor.hh"

namespace rex {
namespace {

using sem::ThreadExecutor;
using sem::ThreadTrace;
using sem::ValueDomain;

LitmusTest
makeTest(const std::string &text)
{
    return parseLitmus(text);
}

/** Count events of a kind in a trace. */
std::size_t
countKind(const ThreadTrace &trace, EventKind kind)
{
    return static_cast<std::size_t>(
        std::count_if(trace.events.begin(), trace.events.end(),
                      [&](const Event &e) { return e.kind == kind; }));
}

TEST(Executor, StraightLineStoreTrace)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    MOV X0,#1\n"
        "    STR X0,[X1]\n"
        "allowed: *x=1\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    ASSERT_EQ(traces[0].events.size(), 1u);
    EXPECT_EQ(traces[0].events[0].kind, EventKind::WriteMem);
    EXPECT_EQ(traces[0].events[0].value, 1u);
    EXPECT_EQ(traces[0].finalRegs[0], 1u);
}

TEST(Executor, LoadForksOverValueDomain)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"
        "allowed: 0:X0=0\n");
    ValueDomain domain(test);
    domain.addLocValue(0, 1);
    domain.addLocValue(0, 2);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    EXPECT_EQ(traces.size(), 3u);  // one per candidate value
    std::set<std::uint64_t> values;
    for (const auto &trace : traces)
        values.insert(trace.finalRegs[0]);
    EXPECT_EQ(values, (std::set<std::uint64_t>{0, 1, 2}));
}

TEST(Executor, AddrDataCtrlDependencies)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X7=1\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"       // event 0: read
        "    EOR X2,X0,X0\n"
        "    LDR X4,[X3,X2]\n"    // event 1: addr-dependent read
        "    CBNZ X0,L\n"
        "L:\n"
        "    STR X7,[X3]\n"       // event 2: ctrl-dependent write
        "allowed: 0:X0=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    ASSERT_EQ(trace.events.size(), 3u);
    EXPECT_EQ(trace.addr, (std::vector<std::pair<int, int>>{{0, 1}}));
    EXPECT_EQ(trace.ctrl, (std::vector<std::pair<int, int>>{{0, 2}}));
    EXPECT_TRUE(trace.data.empty());
}

TEST(Executor, DataDependencyIntoStoreAndMsr)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    LDR X0,[X1]\n"          // event 0
        "    EOR X2,X0,X0\n"
        "    ADD X2,X2,#1\n"
        "    STR X2,[X3]\n"          // event 1: data-dependent store
        "    MSR ESR_EL1,X0\n"       // event 2: data-dependent MSR
        "allowed: 0:X0=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    EXPECT_EQ(trace.data,
              (std::vector<std::pair<int, int>>{{0, 1}, {0, 2}}));
}

TEST(Executor, SvcSplicesHandlerWithTeAndEret)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=1\n"
        "thread 0:\n"
        "    SVC #0\n"
        "    LDR X0,[X1]\n"
        "handler 0:\n"
        "    STR X2,[X1]\n"
        "    ERET\n"
        "allowed: 0:X0=1\n");
    ValueDomain domain(test);
    domain.addLocValue(0, 1);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 2u);  // post-return load forks over values
    const ThreadTrace &trace = traces[0];
    ASSERT_EQ(trace.events.size(), 4u);
    EXPECT_EQ(trace.events[0].kind, EventKind::TakeException);
    EXPECT_EQ(trace.events[0].exceptionClass, ExceptionClass::Svc);
    EXPECT_EQ(trace.events[1].kind, EventKind::WriteMem);
    EXPECT_EQ(trace.events[2].kind, EventKind::ExceptionReturn);
    EXPECT_EQ(trace.events[3].kind, EventKind::ReadMem);
}

TEST(Executor, HandlerWithoutEretTerminatesThread)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    SVC #0\n"
        "    LDR X0,[X1]\n"   // never executed
        "handler 0:\n"
        "    MOV X5,#9\n"
        "allowed: 0:X5=9\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(countKind(traces[0], EventKind::ReadMem), 0u);
    EXPECT_EQ(traces[0].finalRegs[5], 9u);
}

TEST(Executor, FaultingAccessSkipsWritebackAndData)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X9=x\n"
        "thread 0:\n"
        "    MOV X5,#0\n"
        "    LDR X4,[X5],#8\n"
        "handler 0:\n"
        "    MOV X6,#1\n"
        "allowed: 0:X6=1\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    // A TE(fault) event, no memory read, and no writeback (§3.4).
    EXPECT_EQ(countKind(trace, EventKind::ReadMem), 0u);
    ASSERT_GE(trace.events.size(), 1u);
    EXPECT_EQ(trace.events[0].kind, EventKind::TakeException);
    EXPECT_EQ(trace.events[0].exceptionClass,
              ExceptionClass::DataAbortTranslation);
    EXPECT_EQ(trace.finalRegs[5], 0u);  // writeback suppressed
}

TEST(Executor, SuccessfulPostIndexWritesBack)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    LDR X4,[X1],#8\n"
        "allowed: 0:X4=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].finalRegs[1], locationAddress(0) + 8);
}

TEST(Executor, ElrDependencyFlowsIntoEret)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    SVC #0\n"
        "    NOP\n"
        "handler 0:\n"
        "    LDR X0,[X1]\n"
        "    MRS X4,ELR_EL1\n"
        "    EOR X5,X0,X0\n"
        "    ADD X5,X4,X5\n"
        "    MSR ELR_EL1,X5\n"
        "    ERET\n"
        "allowed: 0:X0=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    // Events: TE, R x, MRS, MSR, ERET. The handler load must have data
    // edges into both the MSR and the ERET (§3.2.5).
    int read_idx = -1, msr_idx = -1, eret_idx = -1;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        if (trace.events[i].kind == EventKind::ReadMem)
            read_idx = static_cast<int>(i);
        if (trace.events[i].kind == EventKind::WriteSysreg)
            msr_idx = static_cast<int>(i);
        if (trace.events[i].kind == EventKind::ExceptionReturn)
            eret_idx = static_cast<int>(i);
    }
    ASSERT_GE(read_idx, 0);
    ASSERT_GE(msr_idx, 0);
    ASSERT_GE(eret_idx, 0);
    auto has_edge = [&](int a, int b) {
        return std::find(trace.data.begin(), trace.data.end(),
                         std::make_pair(a, b)) != trace.data.end();
    };
    EXPECT_TRUE(has_edge(read_idx, msr_idx));
    EXPECT_TRUE(has_edge(read_idx, eret_idx));
}

TEST(Executor, InterruptAtLabelIsMandatoryAndPlaced)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    NOP\n"
        "L:\n"
        "    NOP\n"
        "handler 0:\n"
        "    LDR X0,[X1]\n"
        "interrupt 0 at L intid 3\n"
        "allowed: 0:X0=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    ASSERT_GE(trace.events.size(), 1u);
    EXPECT_EQ(trace.events[0].kind, EventKind::TakeInterrupt);
    EXPECT_EQ(trace.events[0].intid, 3u);
    EXPECT_FALSE(trace.events[0].sgiDelivered);
}

TEST(Executor, SgiReceiverEnumeratesPlacementsRespectingMask)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 1:X1=x; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MOV X2,#1,LSL #40\n"
        "    MSR ICC_SGI1R_EL1,X2\n"
        "thread 1:\n"
        "    MSR DAIFSet,#0xf\n"
        "    LDR X0,[X1]\n"
        "    MSR DAIFClr,#0xf\n"
        "handler 1:\n"
        "    MOV X3,#1\n"
        "    ERET\n"
        "allowed: 1:X3=1\n");
    ValueDomain domain(test);
    domain.addIntid(0);
    ThreadExecutor executor(test, 1, domain);
    auto traces = executor.enumerate();
    // Plans: not-taken, plus taken at each unmasked point: before the
    // DAIFSet (index 0) and after the DAIFClr (index 3 = program end).
    // Masked points (inside the section) are pruned.
    std::size_t with_interrupt = 0;
    for (const auto &trace : traces)
        with_interrupt += countKind(trace, EventKind::TakeInterrupt);
    EXPECT_EQ(traces.size(), 3u);
    EXPECT_EQ(with_interrupt, 2u);
    for (const auto &trace : traces) {
        for (const Event &e : trace.events) {
            if (e.kind == EventKind::TakeInterrupt) {
                EXPECT_TRUE(e.sgiDelivered);
            }
        }
    }
}

TEST(Executor, StxrForksSuccessAndFailure)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x\n"
        "thread 0:\n"
        "    LDXR X0,[X1]\n"
        "    MOV X2,#1\n"
        "    STXR W3,X2,[X1]\n"
        "allowed: 0:X3=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 2u);
    std::set<std::uint64_t> statuses;
    for (const auto &trace : traces)
        statuses.insert(trace.finalRegs[3]);
    EXPECT_EQ(statuses, (std::set<std::uint64_t>{0, 1}));
    // The successful trace has the rmw edge.
    for (const auto &trace : traces) {
        if (trace.finalRegs[3] == 0)
            EXPECT_EQ(trace.rmw.size(), 1u);
        else
            EXPECT_TRUE(trace.rmw.empty());
    }
}

TEST(Executor, GicEventsAreIioAfterRegisterAccess)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MOV X2,#1,LSL #40\n"
        "    MSR ICC_SGI1R_EL1,X2\n"
        "allowed: *x=0\n");
    ValueDomain domain(test);
    ThreadExecutor executor(test, 0, domain);
    auto traces = executor.enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.events[0].kind, EventKind::WriteSysreg);
    EXPECT_EQ(trace.events[1].kind, EventKind::GenerateInterrupt);
    EXPECT_EQ(trace.iio, (std::vector<std::pair<int, int>>{{0, 1}}));
    // Broadcast from thread 0 of a 1-thread test: empty target mask.
    EXPECT_EQ(trace.events[1].targetMask, 0u);
}

TEST(Executor, ConstrainedUnpredictableFlagged)
{
    // MSR VBAR_EL1 followed by an exception with no intervening context
    // synchronisation: the paper declines to define this (s1.2); we
    // flag it.
    LitmusTest unsynced = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=4096; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MSR VBAR_EL1,X2\n"
        "    SVC #0\n"
        "handler 0:\n"
        "    MOV X5,#1\n"
        "allowed: 0:X5=1\n");
    ValueDomain domain(unsynced);
    auto traces = ThreadExecutor(unsynced, 0, domain).enumerate();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_TRUE(traces[0].constrainedUnpredictable);

    // With an ISB between, the context change is synchronised.
    LitmusTest synced = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=4096; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MSR VBAR_EL1,X2\n"
        "    ISB\n"
        "    SVC #0\n"
        "handler 0:\n"
        "    MOV X5,#1\n"
        "allowed: 0:X5=1\n");
    auto synced_traces =
        ThreadExecutor(synced, 0, ValueDomain(synced)).enumerate();
    ASSERT_EQ(synced_traces.size(), 1u);
    EXPECT_FALSE(synced_traces[0].constrainedUnpredictable);
}

TEST(Executor, PartialPairFaultFlagsUnknowns)
{
    // STP whose second element lands beyond the last mapped cell: the
    // first element performs, the second faults, and the trace carries
    // the s6 UNKNOWN flag.
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; 0:X1=x; 0:X2=1; 0:X3=2\n"   // only one location
        "thread 0:\n"
        "    STP X2,X3,[X1]\n"
        "handler 0:\n"
        "    MOV X6,#1\n"
        "allowed: 0:X6=1\n");
    ValueDomain domain(test);
    auto traces = ThreadExecutor(test, 0, domain).enumerate();
    ASSERT_EQ(traces.size(), 1u);
    const ThreadTrace &trace = traces[0];
    EXPECT_TRUE(trace.unknownSideEffects);
    // One write performed (the first element), then the fault.
    EXPECT_EQ(countKind(trace, EventKind::WriteMem), 1u);
    EXPECT_EQ(countKind(trace, EventKind::TakeException), 1u);
}

TEST(Executor, FullPairEmitsTwoAccesses)
{
    LitmusTest test = makeTest(
        "name: t\n"
        "init: *x=0; *y=0; 0:X1=x; 0:X2=1; 0:X3=2\n"
        "thread 0:\n"
        "    STP X2,X3,[X1]\n"
        "allowed: *x=1 & *y=2\n");
    ValueDomain domain(test);
    auto traces = ThreadExecutor(test, 0, domain).enumerate();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(countKind(traces[0], EventKind::WriteMem), 2u);
    EXPECT_FALSE(traces[0].unknownSideEffects);
}

TEST(ExceptionHelpers, SyndromesAndReturns)
{
    using namespace sem;
    EXPECT_EQ(syndromeFor(ExceptionClass::Svc, 0) >> 26, 0x15u);
    EXPECT_EQ(syndromeFor(ExceptionClass::DataAbortTranslation, 0) >> 26,
              0x25u);
    EXPECT_EQ(preferredReturn(ExceptionClass::Svc, 4), 5u);
    EXPECT_EQ(preferredReturn(ExceptionClass::DataAbortTranslation, 4),
              4u);
}

TEST(ExceptionHelpers, SgiEncodingRoundTrip)
{
    using namespace sem;
    SgiRequest broadcast = decodeSgi1r(std::uint64_t{1} << 40);
    EXPECT_TRUE(broadcast.broadcast);
    EXPECT_EQ(broadcast.targetMask(3, 0), 0b110u);

    SgiRequest list = decodeSgi1r((std::uint64_t{7} << 24) | 0b011);
    EXPECT_EQ(list.intid, 7u);
    EXPECT_EQ(list.targetMask(3, 5), 0b011u);
}

} // namespace
} // namespace rex
