/**
 * @file
 * The repository's central correctness test: for every built-in litmus
 * test, the axiomatic model's Allowed/Forbidden verdict must match the
 * paper's architectural intent — under the baseline model and under
 * every variant the test declares (the param-refs columns).
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

struct VerdictCase {
    const LitmusTest *test;
    std::string variant;
    bool expectAllowed;
};

std::vector<VerdictCase>
allCases()
{
    std::vector<VerdictCase> cases;
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        cases.push_back({test, "base", test->expectedAllowed});
        for (const auto &[variant, allowed] : test->variantAllowed)
            cases.push_back({test, variant, allowed});
    }
    return cases;
}

class VerdictTest : public ::testing::TestWithParam<VerdictCase> {};

TEST_P(VerdictTest, MatchesArchitecturalIntent)
{
    const VerdictCase &c = GetParam();
    ModelParams params = ModelParams::byName(c.variant);
    CheckResult result = checkTest(*c.test, params, true);
    EXPECT_EQ(result.observable, c.expectAllowed)
        << c.test->name << " under " << c.variant << ": model says "
        << (result.observable ? "Allowed" : "Forbidden")
        << " but the architectural intent is "
        << (c.expectAllowed ? "Allowed" : "Forbidden");
}

std::string
caseName(const ::testing::TestParamInfo<VerdictCase> &info)
{
    std::string name = info.param.test->name + "_" + info.param.variant;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllTests, VerdictTest,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Registry, HasFullLibrary)
{
    // The paper reports a library of 61 hand-written tests; ours should
    // be at least as large.
    EXPECT_GE(TestRegistry::instance().all().size(), 40u);
    EXPECT_FALSE(TestRegistry::instance().suite("core").empty());
    EXPECT_FALSE(TestRegistry::instance().suite("exceptions").empty());
    EXPECT_FALSE(TestRegistry::instance().suite("sea").empty());
    EXPECT_FALSE(TestRegistry::instance().suite("gic").empty());
}

} // namespace
} // namespace rex
