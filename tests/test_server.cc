/**
 * @file
 * Tests for the rexd litmus-checking service: the request JSON parser,
 * request validation, route dispatch through CheckService, and — the
 * acceptance bar — a live RexServer on an ephemeral localhost port
 * driven by concurrent Client instances: byte-identical verdicts vs the
 * direct checker, cache-hit rates across rounds via /metrics, 503
 * backpressure under a pinned queue, and graceful drain with a complete
 * JSONL results file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/faultinject.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "server/server.hh"
#include "server/service.hh"

namespace rex {
namespace {

namespace fs = std::filesystem;

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
        ("rex_server_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** An engine with no cache, no results file, and a tiny pool. */
engine::EngineConfig
plainConfig(unsigned jobs = 2)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

/** Extract the value of a single-sample Prometheus metric line. */
double
metricValue(const std::string &exposition, const std::string &name)
{
    for (const std::string &line : split(exposition, '\n')) {
        if (startsWith(line, name + " ")) {
            return std::strtod(line.c_str() + name.size() + 1, nullptr);
        }
    }
    return -1.0;
}

/** Zero the schedule-dependent fields of one JSONL verdict line. */
std::string
stabilise(const std::string &line)
{
    server::JsonValue v = server::parseJson(line);
    auto str = [&](const char *key) {
        const server::JsonValue *m = v.find(key);
        return m && m->isString() ? m->string : std::string();
    };
    auto num = [&](const char *key) -> std::uint64_t {
        const server::JsonValue *m = v.find(key);
        return m && m->isInt() ? static_cast<std::uint64_t>(m->integer)
                               : 0;
    };
    engine::JobRecord record;
    record.kind = str("kind");
    record.test = str("test");
    record.variant = str("variant");
    record.verdict = str("verdict");
    record.candidates = num("candidates");
    record.consistent = num("consistent");
    record.witnesses = num("witnesses");
    record.runs = num("runs");
    record.observed = num("observed");
    record.forbidding = str("forbidding");
    record.exhaustedAxis = str("exhausted_axis");
    record.stage = str("stage");
    record.workerSignal = str("signal");
    record.crashes = num("crashes");
    return record.toJson();
}

/**
 * An adversarial litmus test: twelve independent loads over four
 * locations with two writers each blow the candidate space up to
 * ~8.5M, several seconds of full enumeration — the shape of request a
 * deadline budget exists to bound. The condition is unsatisfiable, so
 * stop_at_first never short-circuits the enumeration.
 */
const char *kAdversarialTest =
    "AArch64 BigRF\n"
    "{ x=0; y=0; z=0; w=0;\n"
    "  0:X1=x; 0:X3=y; 0:X5=z; 0:X7=w;\n"
    "  1:X1=x; 1:X3=y; 1:X5=z; 1:X7=w;\n"
    "  2:X1=x; 2:X3=y; 2:X5=z; 2:X7=w;\n"
    "  3:X1=x; 3:X3=y; 3:X5=z; 3:X7=w; }\n"
    " P0          | P1          | P2          | P3          ;\n"
    " MOV W0,#1   | MOV W0,#2   | LDR W0,[X1] | LDR W0,[X7] ;\n"
    " STR W0,[X1] | STR W0,[X1] | LDR W2,[X3] | LDR W2,[X5] ;\n"
    " MOV W2,#1   | MOV W2,#2   | LDR W4,[X5] | LDR W4,[X3] ;\n"
    " STR W2,[X3] | STR W2,[X3] | LDR W6,[X7] | LDR W6,[X1] ;\n"
    " MOV W4,#1   | MOV W4,#2   | LDR W8,[X1] | LDR W8,[X3] ;\n"
    " STR W4,[X5] | STR W4,[X5] | LDR W9,[X3] | LDR W9,[X5] ;\n"
    " MOV W6,#1   | MOV W6,#2   |             |             ;\n"
    " STR W6,[X7] | STR W6,[X7] |             |             ;\n"
    "exists (2:X0=7 /\\ 2:X2=7)\n";

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers)
{
    server::JsonValue v = server::parseJson(
        "{\"a\": [1, 2.5, \"x\", true, null], \"b\": {\"c\": -7}}");
    ASSERT_TRUE(v.isObject());
    const server::JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 5u);
    EXPECT_EQ(a->array[0].integer, 1);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
    EXPECT_EQ(a->array[2].string, "x");
    EXPECT_TRUE(a->array[3].boolean);
    EXPECT_TRUE(a->array[4].isNull());
    const server::JsonValue *b = v.find("b");
    ASSERT_TRUE(b && b->isObject());
    EXPECT_EQ(b->find("c")->integer, -7);
}

TEST(Json, DecodesStringEscapes)
{
    server::JsonValue v = server::parseJson(
        "\"a\\n\\t\\\"b\\\\c\\u0041\\u00e9\"");
    EXPECT_EQ(v.string, "a\n\t\"b\\cA\xc3\xa9");
}

TEST(Json, DecodesSurrogatePairs)
{
    // U+1F600 as a surrogate pair.
    server::JsonValue v = server::parseJson("\"\\ud83d\\ude00\"");
    EXPECT_EQ(v.string, "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad : {
             "", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul",
             "\"unterminated", "\"bad\\q\"", "\"\\u12\"", "01", "1.",
             "{\"a\":1} trailing", "[1 2]", "{\"a\":1,}", "+1",
             "\"\\ud83d\"",  // lone high surrogate
         }) {
        EXPECT_THROW(server::parseJson(bad), FatalError) << bad;
    }
}

TEST(Json, RejectsExcessiveNesting)
{
    std::string deep(server::kMaxJsonDepth + 1, '[');
    deep += std::string(server::kMaxJsonDepth + 1, ']');
    EXPECT_THROW(server::parseJson(deep), FatalError);
    std::string ok(server::kMaxJsonDepth, '[');
    ok += std::string(server::kMaxJsonDepth, ']');
    EXPECT_NO_THROW(server::parseJson(ok));
}

TEST(Json, PreservesInt64Range)
{
    EXPECT_EQ(server::parseJson("9223372036854775807").integer,
              INT64_MAX);
    EXPECT_EQ(server::parseJson("-9223372036854775808").integer,
              INT64_MIN);
    // Out of int64 range falls back to double, not an error.
    EXPECT_TRUE(server::parseJson("18446744073709551616").kind ==
                server::JsonValue::Kind::Double);
}

// ---------------------------------------------------------------------
// Request validation
// ---------------------------------------------------------------------

TEST(CheckRequest, ParsesVariantListAndPaperShorthand)
{
    server::CheckRequest r = server::CheckRequest::fromJson(
        "{\"test\": \"name: t\", \"variants\": [\"base\", \"SEA_R\"]}");
    EXPECT_EQ(r.testText, "name: t");
    EXPECT_EQ(r.variants,
              (std::vector<std::string>{"base", "SEA_R"}));

    server::CheckRequest paper = server::CheckRequest::fromJson(
        "{\"test\": \"x\", \"variants\": \"paper\"}");
    EXPECT_EQ(paper.variants.size(),
              ModelParams::paperVariants().size());

    server::CheckRequest defaulted =
        server::CheckRequest::fromJson("{\"test\": \"x\"}");
    EXPECT_EQ(defaulted.variants,
              (std::vector<std::string>{"base"}));
}

TEST(CheckRequest, RejectsBadBodies)
{
    for (const char *bad : {
             "not json",
             "[]",                              // not an object
             "{}",                              // no test
             "{\"test\": 7}",                   // test not a string
             "{\"test\": \"\"}",                // empty test
             "{\"test\": \"x\", \"variants\": 3}",
             "{\"test\": \"x\", \"variants\": [3]}",
             "{\"test\": \"x\", \"variants\": [\"nope\"]}",
             "{\"test\": \"x\", \"variants\": \"everything\"}",
             "{\"test\": \"x\", \"bogus\": 1}", // unknown member
             "{\"test\": \"x\", \"sleep_ms\": \"soon\"}",
         }) {
        EXPECT_THROW(server::CheckRequest::fromJson(bad), FatalError)
            << bad;
    }

    // Variant fan-out is bounded.
    std::string many = "{\"test\": \"x\", \"variants\": [";
    for (int i = 0; i < 33; ++i)
        many += std::string(i ? "," : "") + "\"base\"";
    many += "]}";
    EXPECT_THROW(server::CheckRequest::fromJson(many), FatalError);
}

TEST(CheckRequest, ParsesAndValidatesBudgets)
{
    server::CheckRequest r = server::CheckRequest::fromJson(
        "{\"test\": \"x\", \"deadline_ms\": 250, "
        "\"max_candidates\": 9}");
    EXPECT_EQ(r.deadlineMs, 250);
    EXPECT_EQ(r.maxCandidates, 9);

    server::CheckRequest none =
        server::CheckRequest::fromJson("{\"test\": \"x\"}");
    EXPECT_EQ(none.deadlineMs, 0);
    EXPECT_EQ(none.maxCandidates, 0);

    for (const char *bad : {
             "{\"test\": \"x\", \"deadline_ms\": \"soon\"}",
             "{\"test\": \"x\", \"deadline_ms\": -1}",
             "{\"test\": \"x\", \"max_candidates\": 1.5}",
             "{\"test\": \"x\", \"max_candidates\": -3}",
         }) {
        EXPECT_THROW(server::CheckRequest::fromJson(bad), FatalError)
            << bad;
    }
}

// ---------------------------------------------------------------------
// Route dispatch (no sockets)
// ---------------------------------------------------------------------

struct DirectService {
    engine::Engine engine{plainConfig()};
    server::Metrics metrics;
    server::CheckService service{engine, metrics};

    server::HttpResponse
    request(const std::string &method, const std::string &path,
            const std::string &body = "")
    {
        server::HttpRequest req;
        req.method = method;
        req.path = path;
        req.body = body;
        return service.handle(req);
    }
};

TEST(CheckService, RoutesAndErrors)
{
    DirectService d;
    EXPECT_EQ(d.request("GET", "/healthz").status, 200);
    EXPECT_EQ(d.request("GET", "/metrics").status, 200);
    EXPECT_EQ(d.request("GET", "/nope").status, 404);
    EXPECT_EQ(d.request("GET", "/check").status, 405);
    EXPECT_EQ(d.request("POST", "/healthz").status, 405);
    EXPECT_EQ(d.request("PUT", "/check").status, 405);
    EXPECT_EQ(d.request("POST", "/check", "not json").status, 400);
    EXPECT_EQ(d.request("POST", "/check", "{\"test\":\"junk\"}").status,
              400);
    EXPECT_EQ(d.metrics.responses400.load(), 2u);
}

TEST(CheckService, ChecksABuiltinTestAcrossVariants)
{
    DirectService d;
    const std::string &text =
        TestRegistry::instance().sourceText("SB+pos");
    server::HttpResponse response = d.request(
        "POST", "/check",
        server::checkRequestJson(text, {"base", "SEA_RW"}));
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.contentType, "application/x-ndjson");

    std::vector<std::string> lines;
    for (const std::string &line : split(response.body, '\n')) {
        if (!trim(line).empty())
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u);
    server::JsonValue first = server::parseJson(lines[0]);
    EXPECT_EQ(first.find("test")->string, "SB+pos");
    EXPECT_EQ(first.find("variant")->string, "base");
    EXPECT_EQ(first.find("verdict")->string, "Allowed");
    EXPECT_EQ(server::parseJson(lines[1]).find("variant")->string,
              "SEA_RW");
    EXPECT_EQ(d.metrics.verdictsAllowed.load() +
                  d.metrics.verdictsForbidden.load(),
              2u);
}

TEST(CheckService, AcceptsHerdFormatInput)
{
    DirectService d;
    std::string herd =
        "AArch64 MP+wire\n"
        "{ x=0; y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
        " P0          | P1          ;\n"
        " MOV W0,#1   | LDR W0,[X1] ;\n"
        " STR W0,[X1] | LDR W2,[X3] ;\n"
        " MOV W2,#1   |             ;\n"
        " STR W2,[X3] |             ;\n"
        "exists (1:X0=1 /\\ 1:X2=0)\n";
    server::HttpResponse response = d.request(
        "POST", "/check", server::checkRequestJson(herd, {"base"}));
    ASSERT_EQ(response.status, 200);
    server::JsonValue record =
        server::parseJson(trim(response.body));
    EXPECT_EQ(record.find("test")->string, "MP+wire");
    EXPECT_EQ(record.find("verdict")->string, "Allowed");
}

// ---------------------------------------------------------------------
// Live server integration
// ---------------------------------------------------------------------

/** Tests the acceptance bar drives against one shared live daemon. */
class LiveServer : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        engine::EngineConfig config;
        config.jobs = 2;
        config.cacheEnabled = true;
        config.cacheDir = "";  // in-memory: hit/miss counters only
        config.resultsPath = scratchDir("live") + "/rexd.jsonl";
        _engine = std::make_unique<engine::Engine>(config);

        server::ServerConfig server_config;
        server_config.threads = 4;
        server_config.maxQueue = 32;
        _server = std::make_unique<server::RexServer>(*_engine,
                                                      server_config);
        _server->start();
    }

    void
    TearDown() override
    {
        _server->requestDrain();
        _server->join();
    }

    server::Client
    client()
    {
        return server::Client("127.0.0.1", _server->port());
    }

    std::unique_ptr<engine::Engine> _engine;
    std::unique_ptr<server::RexServer> _server;
};

TEST_F(LiveServer, HealthAndMetricsRespond)
{
    EXPECT_TRUE(client().healthy());
    server::ClientResponse metrics = client().get("/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("rexd_requests_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("rexd_stage_seconds_bucket"),
              std::string::npos);
}

TEST_F(LiveServer, ConcurrentClientsGetByteIdenticalVerdicts)
{
    // Eight concurrent clients, each checking its own builtin test
    // under the full paper matrix, twice (second round = cache hits).
    const std::vector<std::string> tests = {
        "SB+pos",          "MP+pos",          "SB+dmb.sys",
        "MP+dmb.sys",      "SB+dmb.sy+eret",  "MP+dmb.sy+addr",
        "MP+dmb.sy+fault", "LB+pos",
    };
    std::vector<std::string> variants;
    for (const ModelParams &params : ModelParams::paperVariants())
        variants.push_back(params.name());

    // Expected bodies from a private engine running the same wire
    // text through the same record renderer — the direct checker.
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        for (const std::string &v : variants) {
            engine::JobRecord record =
                direct.verdictRecord(test, ModelParams::byName(v));
            record.wallMicros = 0;
            record.cacheHit = false;
            expected[i] += record.toJson() + "\n";
        }
    }

    for (int round = 0; round < 2; ++round) {
        std::vector<std::string> got(tests.size());
        std::vector<std::thread> workers;
        std::atomic<int> failures{0};
        for (std::size_t i = 0; i < tests.size(); ++i) {
            workers.emplace_back([&, i] {
                try {
                    server::Client c("127.0.0.1", _server->port());
                    server::ClientResponse r = c.check(
                        TestRegistry::instance().sourceText(tests[i]),
                        variants);
                    if (r.status != 200) {
                        ++failures;
                        return;
                    }
                    for (const std::string &line : split(r.body, '\n')) {
                        if (!trim(line).empty())
                            got[i] += stabilise(line) + "\n";
                    }
                } catch (...) {
                    ++failures;
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        ASSERT_EQ(failures.load(), 0) << "round " << round;
        for (std::size_t i = 0; i < tests.size(); ++i)
            EXPECT_EQ(got[i], expected[i]) << tests[i];
    }

    // Round two re-checked every (test × variant) pair: at least 90%
    // of all verdicts must have come from the shared cache.
    std::string exposition = client().get("/metrics").body;
    double hits = metricValue(exposition, "rexd_cache_hits_total");
    double misses = metricValue(exposition, "rexd_cache_misses_total");
    ASSERT_GE(hits, 0.0);
    ASSERT_GT(hits + misses, 0.0);
    EXPECT_GE(hits / (hits + misses), 0.45);  // whole-run ratio
    // Round 2 alone: every one of its verdicts was a hit.
    double total = tests.size() * variants.size() * 2.0;
    EXPECT_GE(hits, 0.9 * (total / 2.0));
}

TEST_F(LiveServer, OversizedBodyGets413)
{
    std::string huge(_server->config().limits.maxBodyBytes + 1, 'x');
    server::ClientResponse r = client().post("/check", huge);
    EXPECT_EQ(r.status, 413);
}

TEST_F(LiveServer, MalformedJsonGets400)
{
    server::ClientResponse r = client().post("/check", "{oops");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("error"), std::string::npos);
}

TEST_F(LiveServer, AdversarialDeadlineIsBoundedWhileOthersUnaffected)
{
    // The acceptance bar: one client posts the adversarial test with a
    // 200ms deadline and gets a structured exhausted_budget verdict in
    // well under a second, while concurrent unbudgeted clients keep
    // getting byte-identical verdicts throughout.
    const std::vector<std::string> tests = {"SB+pos", "MP+dmb.sys",
                                            "LB+pos", "SB+dmb.sys"};
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        engine::JobRecord record =
            direct.verdictRecord(test, ModelParams::base());
        record.wallMicros = 0;
        record.cacheHit = false;
        expected[i] = record.toJson() + "\n";
    }

    std::atomic<int> failures{0};
    std::vector<std::string> got(tests.size());
    std::vector<std::thread> bystanders;
    for (std::size_t i = 0; i < tests.size(); ++i) {
        bystanders.emplace_back([&, i] {
            try {
                server::Client c("127.0.0.1", _server->port());
                server::ClientResponse r = c.check(
                    TestRegistry::instance().sourceText(tests[i]),
                    {"base"});
                if (r.status != 200) {
                    ++failures;
                    return;
                }
                got[i] = stabilise(trim(r.body)) + "\n";
            } catch (...) {
                ++failures;
            }
        });
    }

    const auto start = std::chrono::steady_clock::now();
    server::ClientResponse adversarial =
        client().check(kAdversarialTest, {"base"}, 0, /*deadlineMs=*/200);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    for (std::thread &w : bystanders)
        w.join();

    ASSERT_EQ(adversarial.status, 200);
    server::JsonValue record =
        server::parseJson(trim(adversarial.body));
    EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
    ASSERT_NE(record.find("exhausted_axis"), nullptr);
    EXPECT_EQ(record.find("exhausted_axis")->string, "deadline");
    const std::string stage = record.find("stage")->string;
    EXPECT_TRUE(stage == "traces" || stage == "plan" ||
                stage == "enumerate" || stage == "merge")
        << stage;
    EXPECT_LT(elapsed.count(), 500);

    ASSERT_EQ(failures.load(), 0);
    for (std::size_t i = 0; i < tests.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << tests[i];

    std::string exposition = client().get("/metrics").body;
    EXPECT_GE(metricValue(exposition,
                          "rexd_budget_trips_total{axis=\"deadline\"}"),
              1.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"exhausted_budget\"}"),
        1.0);
}

TEST_F(LiveServer, CandidateCeilingTripIsDeterministicAndUncached)
{
    // max_candidates is the exactly-deterministic axis: the same
    // budgeted request yields the same partial record every time, and
    // exhausted verdicts never come from (or poison) the cache.
    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        server::ClientResponse r = client().check(
            text, {"base"}, 0, 0, /*maxCandidates=*/1);
        ASSERT_EQ(r.status, 200);
        server::JsonValue record = server::parseJson(trim(r.body));
        EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
        EXPECT_EQ(record.find("exhausted_axis")->string, "candidates");
        EXPECT_EQ(record.find("candidates")->integer, 1);
        EXPECT_FALSE(record.find("cache_hit")->boolean);
        *out = stabilise(trim(r.body));
    }
    EXPECT_EQ(first, second);

    // An unbudgeted check of the same test is unaffected by the
    // exhausted runs and serves the full verdict.
    server::ClientResponse full = client().check(text, {"base"});
    ASSERT_EQ(full.status, 200);
    EXPECT_EQ(server::parseJson(trim(full.body)).find("verdict")->string,
              "Forbidden");
}

TEST(ServerBudgetCaps, CapsClampEveryRequestIncludingUnbudgeted)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 2;
    config.maxCandidates = 1;  // server-wide ceiling
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");
    server::Client c("127.0.0.1", server.port());

    // A request asking for no budget at all is still capped...
    server::ClientResponse unbudgeted = c.check(text, {"base"});
    ASSERT_EQ(unbudgeted.status, 200);
    server::JsonValue record =
        server::parseJson(trim(unbudgeted.body));
    EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
    EXPECT_EQ(record.find("candidates")->integer, 1);

    // ...and a request asking for more than the cap is clamped down.
    server::ClientResponse greedy =
        c.check(text, {"base"}, 0, 0, /*maxCandidates=*/100);
    ASSERT_EQ(greedy.status, 200);
    EXPECT_EQ(server::parseJson(trim(greedy.body))
                  .find("candidates")
                  ->integer,
              1);

    server.requestDrain();
    server.join();
}

TEST(ServerReadTimeout, SlowLorisGets408AndIsCountedDistinctly)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.limits.ioTimeoutSeconds = 1;
    server::RexServer server(engine, config);
    server.start();

    // Open a connection, send half a request line, and stall: the
    // per-socket read timeout must answer 408 (not 400) and count it
    // in both the response and read-timeout counters.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *partial = "POST /check HT";
    ASSERT_EQ(::send(fd, partial, std::strlen(partial), 0),
              static_cast<ssize_t>(std::strlen(partial)));

    std::string reply;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        reply.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    EXPECT_NE(reply.find("HTTP/1.1 408"), std::string::npos) << reply;

    server.requestDrain();
    server.join();
    EXPECT_EQ(server.metrics().responses408.load(), 1u);
    EXPECT_EQ(server.metrics().readTimeouts.load(), 1u);
    EXPECT_EQ(server.metrics().responses400.load(), 0u);
}

TEST(ClientRetry, TransportErrorsAreRetriedWithBackoff)
{
    // Port 1 refuses immediately; three attempts must sleep through
    // two backoff rounds (~40ms + ~80ms, +-25% jitter) before the
    // final failure surfaces.
    server::Client c("127.0.0.1", 1);
    server::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialDelayMs = 40;
    policy.totalDeadlineMs = 10000;
    c.setRetryPolicy(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(c.get("/healthz"), FatalError);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_GE(elapsed.count(), 90);  // 30 + 60: both floors of the jitter
}

TEST(ClientRetry, TotalDeadlineShortCircuitsTheSleep)
{
    server::Client c("127.0.0.1", 1);
    server::RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.initialDelayMs = 500;
    policy.totalDeadlineMs = 100;  // first backoff would overrun it
    c.setRetryPolicy(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(c.get("/healthz"), FatalError);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 400);
}

TEST(ServerBackpressure, FullQueueShedsWith503)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.maxQueue = 1;
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("SB+pos");

    // Pin the single handler thread with a sleeping request, then
    // flood: with one handler busy and a one-slot queue, most of the
    // flood must be shed with 503 + Retry-After.
    std::thread pinned([&] {
        try {
            server::Client c("127.0.0.1", server.port());
            c.check(text, {"base"}, 700);
        } catch (...) {
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    std::atomic<int> shed{0}, served{0};
    bool saw_retry_after = false;
    std::mutex retry_mutex;
    std::vector<std::thread> flood;
    for (int i = 0; i < 8; ++i) {
        flood.emplace_back([&] {
            try {
                server::Client c("127.0.0.1", server.port());
                server::ClientResponse r = c.check(text, {"base"}, 300);
                if (r.status == 503) {
                    ++shed;
                    std::lock_guard<std::mutex> lock(retry_mutex);
                    if (r.headers.count("retry-after"))
                        saw_retry_after = true;
                } else if (r.status == 200) {
                    ++served;
                }
            } catch (...) {
            }
        });
    }
    for (std::thread &w : flood)
        w.join();
    pinned.join();

    EXPECT_GT(shed.load(), 0);
    EXPECT_TRUE(saw_retry_after);
    EXPECT_GT(served.load(), 0);

    server.requestDrain();
    server.join();
    EXPECT_EQ(server.metrics().queueRejected.load(),
              static_cast<std::uint64_t>(shed.load()));
}

TEST(ServerDrain, InFlightRequestsFinishAndResultsFileIsComplete)
{
    std::string dir = scratchDir("drain");
    engine::EngineConfig engine_config;
    engine_config.jobs = 2;
    engine_config.cacheEnabled = false;
    engine_config.resultsPath = dir + "/rexd.jsonl";
    engine::Engine engine{engine_config};

    server::ServerConfig config;
    config.threads = 2;
    config.maxQueue = 16;
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");

    // Six slow requests in flight, then drain mid-stream.
    std::atomic<int> ok{0}, other{0};
    std::vector<std::thread> workers;
    for (int i = 0; i < 6; ++i) {
        workers.emplace_back([&] {
            server::Client c("127.0.0.1", server.port());
            server::ClientResponse r =
                c.check(text, {"base", "SEA_RW"}, 200);
            (r.status == 200 ? ok : other)++;
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.requestDrain();
    server.join();
    for (std::thread &w : workers)
        w.join();

    // Everything accepted before the drain was served in full; the
    // JSONL results file holds only complete, parseable records.
    EXPECT_EQ(ok.load() + other.load(), 6);
    EXPECT_GT(ok.load(), 0);

    std::ifstream in(engine_config.resultsPath);
    ASSERT_TRUE(in.good());
    std::string line;
    std::uint64_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NO_THROW(server::parseJson(line)) << line;
        EXPECT_EQ(line.back(), '}');
    }
    // One record per served verdict, none truncated, none lost.
    EXPECT_EQ(lines, static_cast<std::uint64_t>(ok.load()) * 2u);
    EXPECT_EQ(lines, engine.results().records());

    // A post-drain connection is refused (the listener is closed).
    server::Client late("127.0.0.1", server.port());
    EXPECT_FALSE(late.healthy());
}

// ---------------------------------------------------------------------
// Supervised workers: crash containment, hard deadlines, quarantine
// ---------------------------------------------------------------------

/** Disarm the process-wide fault injector on scope exit, pass or fail. */
struct FaultGuard {
    ~FaultGuard() { engine::faultInjector().configure(""); }
};

/** A rexd stack with process-isolated workers, torn down in order. */
struct SupervisedStack {
    explicit SupervisedStack(unsigned workers, unsigned quarantine = 3,
                             std::uint64_t killGraceMs = 2000)
    {
        engine::EngineConfig config;
        config.jobs = 2;
        config.cacheEnabled = false;
        config.workers = workers;
        config.crashQuarantine = quarantine;
        config.killGraceMs = killGraceMs;
        engine = std::make_unique<engine::Engine>(config);

        server::ServerConfig server_config;
        server_config.threads = 4;
        server_config.maxQueue = 32;
        server = std::make_unique<server::RexServer>(*engine,
                                                     server_config);
        server->start();
    }

    ~SupervisedStack()
    {
        server->requestDrain();
        server->join();
    }

    server::ClientResponse
    check(const std::string &name, std::int64_t deadlineMs = 0)
    {
        server::Client c("127.0.0.1", server->port());
        return c.check(TestRegistry::instance().sourceText(name),
                       {"base"}, 0, deadlineMs);
    }

    std::string
    metricsBody()
    {
        server::Client c("127.0.0.1", server->port());
        return c.get("/metrics").body;
    }

    std::unique_ptr<engine::Engine> engine;
    std::unique_ptr<server::RexServer> server;
};

TEST(SupervisedServer, HungWorkerIsKilledWhileConcurrentVerdictsMatch)
{
    // The acceptance bar: one request's worker wedges mid-job; it is
    // SIGKILLed at the hard deadline and answered with a CrashedWorker
    // record, while requests served concurrently — during the hang —
    // come back byte-identical to a direct, unsupervised engine.
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/2, /*quarantine=*/3,
                          /*killGraceMs=*/400);

    const std::vector<std::string> tests = {"SB+pos", "MP+dmb.sys",
                                            "LB+pos", "SB+dmb.sys"};
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        engine::JobRecord record =
            direct.verdictRecord(test, ModelParams::base());
        record.wallMicros = 0;
        record.cacheHit = false;
        expected[i] = record.toJson() + "\n";
    }

    engine::faultInjector().configure("worker-hang:1.0:7");
    std::string victimBody;
    const auto start = std::chrono::steady_clock::now();
    std::thread victim([&] {
        victimBody = stack.check("MP+pos", /*deadlineMs=*/400).body;
    });
    // The hang decision is made in the parent at dispatch: once one is
    // injected the victim's worker is wedged, and disarming leaves the
    // bystanders' dispatches clean while it still spins.
    while (engine::faultInjector().injected(
               engine::FaultPoint::WorkerHang) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine::faultInjector().configure("");

    std::atomic<int> failures{0};
    std::vector<std::string> got(tests.size());
    std::vector<std::thread> bystanders;
    for (std::size_t i = 0; i < tests.size(); ++i) {
        bystanders.emplace_back([&, i] {
            try {
                server::ClientResponse r = stack.check(tests[i]);
                if (r.status != 200) {
                    ++failures;
                    return;
                }
                got[i] = stabilise(trim(r.body)) + "\n";
            } catch (...) {
                ++failures;
            }
        });
    }
    for (std::thread &w : bystanders)
        w.join();
    victim.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    // The spinning worker was SIGKILLed within deadline + grace (plus
    // scheduling slack), not left to wedge the slot forever.
    server::JsonValue record = server::parseJson(trim(victimBody));
    ASSERT_NE(record.find("verdict"), nullptr) << victimBody;
    EXPECT_EQ(record.find("verdict")->string, "CrashedWorker");
    ASSERT_NE(record.find("signal"), nullptr);
    EXPECT_EQ(record.find("signal")->string, "SIGKILL");
    EXPECT_GE(elapsed.count(), 400);
    EXPECT_LT(elapsed.count(), 5000);

    ASSERT_EQ(failures.load(), 0);
    for (std::size_t i = 0; i < tests.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << tests[i];

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition,
                          "rexd_worker_crashes_total{signal=\"SIGKILL\"}"),
              1.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"crashed_worker\"}"),
        1.0);
}

TEST(SupervisedServer, CrashedWorkerRespawnsAndTheNextVerdictIsClean)
{
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1);

    engine::faultInjector().configure("worker-crash:1.0:7");
    server::ClientResponse crashed = stack.check("MP+dmb.sys");
    ASSERT_EQ(crashed.status, 200);
    server::JsonValue record = server::parseJson(trim(crashed.body));
    EXPECT_EQ(record.find("verdict")->string, "CrashedWorker");
    EXPECT_EQ(record.find("signal")->string, "SIGSEGV");
    ASSERT_NE(record.find("crashes"), nullptr);
    EXPECT_EQ(record.find("crashes")->integer, 1);

    // Disarmed, the same request rides the respawned worker to the
    // verdict a direct engine computes — no supervision fields.
    engine::faultInjector().configure("");
    server::ClientResponse clean = stack.check("MP+dmb.sys");
    ASSERT_EQ(clean.status, 200);
    engine::Engine direct{plainConfig()};
    LitmusTest test = parseLitmus(
        TestRegistry::instance().sourceText("MP+dmb.sys"));
    engine::JobRecord expected =
        direct.verdictRecord(test, ModelParams::base());
    expected.wallMicros = 0;
    expected.cacheHit = false;
    EXPECT_EQ(stabilise(trim(clean.body)), expected.toJson());
    EXPECT_EQ(clean.body.find("\"signal\""), std::string::npos);

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition, "rexd_worker_crashes_total"), 1.0);
    EXPECT_GE(metricValue(exposition, "rexd_worker_respawns_total"),
              1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_workers_configured"), 1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_workers_live"), 1.0);
}

TEST(SupervisedServer, QuarantineTripsAfterRepeatCrashesAndIsMetered)
{
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1, /*quarantine=*/2);

    engine::faultInjector().configure("worker-crash:1.0:7");
    for (int round = 0; round < 2; ++round) {
        server::ClientResponse r = stack.check("MP+pos");
        ASSERT_EQ(r.status, 200);
        EXPECT_EQ(server::parseJson(trim(r.body))
                      .find("verdict")->string,
                  "CrashedWorker")
            << "round " << round;
    }

    // Two crashes reached the threshold: even disarmed, the key is
    // answered from the ledger without dispatching a worker.
    engine::faultInjector().configure("");
    server::ClientResponse quarantined = stack.check("MP+pos");
    ASSERT_EQ(quarantined.status, 200);
    server::JsonValue record =
        server::parseJson(trim(quarantined.body));
    EXPECT_EQ(record.find("verdict")->string, "Quarantined");
    EXPECT_EQ(record.find("signal")->string, "SIGSEGV");
    EXPECT_EQ(record.find("crashes")->integer, 2);

    // Other keys are untouched by the quarantine.
    server::ClientResponse other = stack.check("SB+pos");
    ASSERT_EQ(other.status, 200);
    engine::Engine direct{plainConfig()};
    LitmusTest sb = parseLitmus(
        TestRegistry::instance().sourceText("SB+pos"));
    engine::JobRecord expected =
        direct.verdictRecord(sb, ModelParams::base());
    expected.wallMicros = 0;
    expected.cacheHit = false;
    EXPECT_EQ(stabilise(trim(other.body)), expected.toJson());

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition, "rexd_quarantined_total"), 1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_quarantined_keys"), 1.0);
    EXPECT_GE(metricValue(exposition,
                          "rexd_worker_crashes_total{signal=\"SIGSEGV\"}"),
              2.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"quarantined\"}"),
        1.0);
}

TEST(SupervisedServer, RetryCrashedPolicyRidesTheRespawnToAVerdict)
{
    // Find a seed whose first worker-crash draw fails and whose next
    // few pass, replicating the injector's splitmix64 mapping: the
    // first attempt crashes, the client's retry lands on the respawned
    // worker and gets the real verdict.
    auto draw = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    };
    const double p = 0.5;
    std::uint64_t seed = 0;
    for (;; ++seed) {
        if (draw(seed) >= p)
            continue;
        bool clean = true;
        for (std::uint64_t k = 1; k <= 8 && clean; ++k)
            clean = draw(seed + k) >= p;
        if (clean)
            break;
    }

    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1);
    engine::faultInjector().configure(
        format("worker-crash:0.5:%llu",
               static_cast<unsigned long long>(seed)));

    server::Client c("127.0.0.1", stack.server->port());
    server::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialDelayMs = 10;
    policy.retryCrashed = true;
    c.setRetryPolicy(policy);
    server::ClientResponse r = c.check(
        TestRegistry::instance().sourceText("MP+dmb.sys"), {"base"});
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(server::parseJson(trim(r.body)).find("verdict")->string,
              "Forbidden");
    EXPECT_EQ(engine::faultInjector().injected(
                  engine::FaultPoint::WorkerCrash),
              1u);
    EXPECT_GE(engine::faultInjector().checked(
                  engine::FaultPoint::WorkerCrash),
              2u);
}

} // namespace
} // namespace rex
