/**
 * @file
 * Tests for the rexd litmus-checking service: the request JSON parser,
 * request validation, route dispatch through CheckService, and — the
 * acceptance bar — a live RexServer on an ephemeral localhost port
 * driven by concurrent Client instances: byte-identical verdicts vs the
 * direct checker, cache-hit rates across rounds via /metrics, 503
 * backpressure under a pinned queue, and graceful drain with a complete
 * JSONL results file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/continuation.hh"
#include "engine/faultinject.hh"
#include "gen/hammer.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "server/client.hh"
#include "server/envelope.hh"
#include "server/hammerdist.hh"
#include "server/json.hh"
#include "server/peer.hh"
#include "server/server.hh"
#include "server/service.hh"

namespace rex {
namespace {

namespace fs = std::filesystem;

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
        ("rex_server_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** An engine with no cache, no results file, and a tiny pool. */
engine::EngineConfig
plainConfig(unsigned jobs = 2)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

/** Extract the value of a single-sample Prometheus metric line. */
double
metricValue(const std::string &exposition, const std::string &name)
{
    for (const std::string &line : split(exposition, '\n')) {
        if (startsWith(line, name + " ")) {
            return std::strtod(line.c_str() + name.size() + 1, nullptr);
        }
    }
    return -1.0;
}

/** Connect a blocking TCP socket to 127.0.0.1:@p port or die. */
int
connectTo(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/** Read from @p fd until the peer closes; every byte received. */
std::string
recvToEof(int fd)
{
    std::string reply;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        reply.append(chunk, static_cast<std::size_t>(n));
    return reply;
}

/** Zero the schedule-dependent fields of one JSONL verdict line. */
std::string
stabilise(const std::string &line)
{
    server::JsonValue v = server::parseJson(line);
    auto str = [&](const char *key) {
        const server::JsonValue *m = v.find(key);
        return m && m->isString() ? m->string : std::string();
    };
    auto num = [&](const char *key) -> std::uint64_t {
        const server::JsonValue *m = v.find(key);
        return m && m->isInt() ? static_cast<std::uint64_t>(m->integer)
                               : 0;
    };
    engine::JobRecord record;
    record.kind = str("kind");
    record.test = str("test");
    record.variant = str("variant");
    record.verdict = str("verdict");
    record.candidates = num("candidates");
    record.consistent = num("consistent");
    record.witnesses = num("witnesses");
    record.runs = num("runs");
    record.observed = num("observed");
    record.forbidding = str("forbidding");
    record.exhaustedAxis = str("exhausted_axis");
    record.stage = str("stage");
    record.workerSignal = str("signal");
    record.crashes = num("crashes");
    return record.toJson();
}

/**
 * An adversarial litmus test: twelve independent loads over four
 * locations with two writers each blow the candidate space up to
 * ~8.5M, several seconds of full enumeration — the shape of request a
 * deadline budget exists to bound. The condition is unsatisfiable, so
 * stop_at_first never short-circuits the enumeration.
 */
const char *kAdversarialTest =
    "AArch64 BigRF\n"
    "{ x=0; y=0; z=0; w=0;\n"
    "  0:X1=x; 0:X3=y; 0:X5=z; 0:X7=w;\n"
    "  1:X1=x; 1:X3=y; 1:X5=z; 1:X7=w;\n"
    "  2:X1=x; 2:X3=y; 2:X5=z; 2:X7=w;\n"
    "  3:X1=x; 3:X3=y; 3:X5=z; 3:X7=w; }\n"
    " P0          | P1          | P2          | P3          ;\n"
    " MOV W0,#1   | MOV W0,#2   | LDR W0,[X1] | LDR W0,[X7] ;\n"
    " STR W0,[X1] | STR W0,[X1] | LDR W2,[X3] | LDR W2,[X5] ;\n"
    " MOV W2,#1   | MOV W2,#2   | LDR W4,[X5] | LDR W4,[X3] ;\n"
    " STR W2,[X3] | STR W2,[X3] | LDR W6,[X7] | LDR W6,[X1] ;\n"
    " MOV W4,#1   | MOV W4,#2   | LDR W8,[X1] | LDR W8,[X3] ;\n"
    " STR W4,[X5] | STR W4,[X5] | LDR W9,[X3] | LDR W9,[X5] ;\n"
    " MOV W6,#1   | MOV W6,#2   |             |             ;\n"
    " STR W6,[X7] | STR W6,[X7] |             |             ;\n"
    "exists (2:X0=7 /\\ 2:X2=7)\n";

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers)
{
    server::JsonValue v = server::parseJson(
        "{\"a\": [1, 2.5, \"x\", true, null], \"b\": {\"c\": -7}}");
    ASSERT_TRUE(v.isObject());
    const server::JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 5u);
    EXPECT_EQ(a->array[0].integer, 1);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
    EXPECT_EQ(a->array[2].string, "x");
    EXPECT_TRUE(a->array[3].boolean);
    EXPECT_TRUE(a->array[4].isNull());
    const server::JsonValue *b = v.find("b");
    ASSERT_TRUE(b && b->isObject());
    EXPECT_EQ(b->find("c")->integer, -7);
}

TEST(Json, DecodesStringEscapes)
{
    server::JsonValue v = server::parseJson(
        "\"a\\n\\t\\\"b\\\\c\\u0041\\u00e9\"");
    EXPECT_EQ(v.string, "a\n\t\"b\\cA\xc3\xa9");
}

TEST(Json, DecodesSurrogatePairs)
{
    // U+1F600 as a surrogate pair.
    server::JsonValue v = server::parseJson("\"\\ud83d\\ude00\"");
    EXPECT_EQ(v.string, "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad : {
             "", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul",
             "\"unterminated", "\"bad\\q\"", "\"\\u12\"", "01", "1.",
             "{\"a\":1} trailing", "[1 2]", "{\"a\":1,}", "+1",
             "\"\\ud83d\"",  // lone high surrogate
         }) {
        EXPECT_THROW(server::parseJson(bad), FatalError) << bad;
    }
}

TEST(Json, RejectsExcessiveNesting)
{
    std::string deep(server::kMaxJsonDepth + 1, '[');
    deep += std::string(server::kMaxJsonDepth + 1, ']');
    EXPECT_THROW(server::parseJson(deep), FatalError);
    std::string ok(server::kMaxJsonDepth, '[');
    ok += std::string(server::kMaxJsonDepth, ']');
    EXPECT_NO_THROW(server::parseJson(ok));
}

TEST(Json, PreservesInt64Range)
{
    EXPECT_EQ(server::parseJson("9223372036854775807").integer,
              INT64_MAX);
    EXPECT_EQ(server::parseJson("-9223372036854775808").integer,
              INT64_MIN);
    // Out of int64 range falls back to double, not an error.
    EXPECT_TRUE(server::parseJson("18446744073709551616").kind ==
                server::JsonValue::Kind::Double);
}

// ---------------------------------------------------------------------
// Request validation
// ---------------------------------------------------------------------

TEST(CheckRequest, ParsesVariantListAndPaperShorthand)
{
    server::CheckRequest r = server::CheckRequest::fromJson(
        "{\"test\": \"name: t\", \"variants\": [\"base\", \"SEA_R\"]}");
    EXPECT_EQ(r.testText, "name: t");
    EXPECT_EQ(r.variants,
              (std::vector<std::string>{"base", "SEA_R"}));

    server::CheckRequest paper = server::CheckRequest::fromJson(
        "{\"test\": \"x\", \"variants\": \"paper\"}");
    EXPECT_EQ(paper.variants.size(),
              ModelParams::paperVariants().size());

    server::CheckRequest defaulted =
        server::CheckRequest::fromJson("{\"test\": \"x\"}");
    EXPECT_EQ(defaulted.variants,
              (std::vector<std::string>{"base"}));
}

TEST(CheckRequest, RejectsBadBodies)
{
    for (const char *bad : {
             "not json",
             "[]",                              // not an object
             "{}",                              // no test
             "{\"test\": 7}",                   // test not a string
             "{\"test\": \"\"}",                // empty test
             "{\"test\": \"x\", \"variants\": 3}",
             "{\"test\": \"x\", \"variants\": [3]}",
             "{\"test\": \"x\", \"variants\": [\"nope\"]}",
             "{\"test\": \"x\", \"variants\": \"everything\"}",
             "{\"test\": \"x\", \"bogus\": 1}", // unknown member
             "{\"test\": \"x\", \"sleep_ms\": \"soon\"}",
         }) {
        EXPECT_THROW(server::CheckRequest::fromJson(bad), FatalError)
            << bad;
    }

    // Variant fan-out is bounded.
    std::string many = "{\"test\": \"x\", \"variants\": [";
    for (int i = 0; i < 33; ++i)
        many += std::string(i ? "," : "") + "\"base\"";
    many += "]}";
    EXPECT_THROW(server::CheckRequest::fromJson(many), FatalError);
}

TEST(CheckRequest, ParsesAndValidatesBudgets)
{
    server::CheckRequest r = server::CheckRequest::fromJson(
        "{\"test\": \"x\", \"deadline_ms\": 250, "
        "\"max_candidates\": 9}");
    EXPECT_EQ(r.deadlineMs, 250);
    EXPECT_EQ(r.maxCandidates, 9);

    server::CheckRequest none =
        server::CheckRequest::fromJson("{\"test\": \"x\"}");
    EXPECT_EQ(none.deadlineMs, 0);
    EXPECT_EQ(none.maxCandidates, 0);

    for (const char *bad : {
             "{\"test\": \"x\", \"deadline_ms\": \"soon\"}",
             "{\"test\": \"x\", \"deadline_ms\": -1}",
             "{\"test\": \"x\", \"max_candidates\": 1.5}",
             "{\"test\": \"x\", \"max_candidates\": -3}",
         }) {
        EXPECT_THROW(server::CheckRequest::fromJson(bad), FatalError)
            << bad;
    }
}

// ---------------------------------------------------------------------
// Route dispatch (no sockets)
// ---------------------------------------------------------------------

struct DirectService {
    engine::Engine engine{plainConfig()};
    server::Metrics metrics;
    server::CheckService service{engine, metrics};

    server::HttpResponse
    request(const std::string &method, const std::string &path,
            const std::string &body = "")
    {
        server::HttpRequest req;
        req.method = method;
        req.path = path;
        req.body = body;
        return service.handle(req);
    }
};

TEST(CheckService, RoutesAndErrors)
{
    DirectService d;
    EXPECT_EQ(d.request("GET", "/healthz").status, 200);
    EXPECT_EQ(d.request("GET", "/metrics").status, 200);
    EXPECT_EQ(d.request("GET", "/nope").status, 404);
    EXPECT_EQ(d.request("GET", "/check").status, 405);
    EXPECT_EQ(d.request("POST", "/healthz").status, 405);
    EXPECT_EQ(d.request("PUT", "/check").status, 405);
    EXPECT_EQ(d.request("POST", "/check", "not json").status, 400);
    EXPECT_EQ(d.request("POST", "/check", "{\"test\":\"junk\"}").status,
              400);
    EXPECT_EQ(d.metrics.responses400.load(), 2u);
}

TEST(CheckService, ChecksABuiltinTestAcrossVariants)
{
    DirectService d;
    const std::string &text =
        TestRegistry::instance().sourceText("SB+pos");
    server::HttpResponse response = d.request(
        "POST", "/check",
        server::checkRequestJson(text, {"base", "SEA_RW"}));
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.contentType, "application/x-ndjson");

    std::vector<std::string> lines;
    for (const std::string &line : split(response.body, '\n')) {
        if (!trim(line).empty())
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u);
    server::JsonValue first = server::parseJson(lines[0]);
    EXPECT_EQ(first.find("test")->string, "SB+pos");
    EXPECT_EQ(first.find("variant")->string, "base");
    EXPECT_EQ(first.find("verdict")->string, "Allowed");
    EXPECT_EQ(server::parseJson(lines[1]).find("variant")->string,
              "SEA_RW");
    EXPECT_EQ(d.metrics.verdictsAllowed.load() +
                  d.metrics.verdictsForbidden.load(),
              2u);
}

TEST(CheckService, AcceptsHerdFormatInput)
{
    DirectService d;
    std::string herd =
        "AArch64 MP+wire\n"
        "{ x=0; y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
        " P0          | P1          ;\n"
        " MOV W0,#1   | LDR W0,[X1] ;\n"
        " STR W0,[X1] | LDR W2,[X3] ;\n"
        " MOV W2,#1   |             ;\n"
        " STR W2,[X3] |             ;\n"
        "exists (1:X0=1 /\\ 1:X2=0)\n";
    server::HttpResponse response = d.request(
        "POST", "/check", server::checkRequestJson(herd, {"base"}));
    ASSERT_EQ(response.status, 200);
    server::JsonValue record =
        server::parseJson(trim(response.body));
    EXPECT_EQ(record.find("test")->string, "MP+wire");
    EXPECT_EQ(record.find("verdict")->string, "Allowed");
}

// ---------------------------------------------------------------------
// Resumable HTTP parser
// ---------------------------------------------------------------------

using ParseResult = server::HttpParser::Result;

TEST(HttpParser, ByteAtATimeDeliveryFramesOneRequest)
{
    const std::string wire =
        "POST /check?x=1 HTTP/1.1\r\nHost: t\r\n"
        "Content-Length: 5\r\n\r\nhello";
    server::HttpParser parser;
    server::HttpRequest request;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        parser.feed(wire.data() + i, 1);
        ASSERT_EQ(parser.next(request), ParseResult::NeedMore)
            << "byte " << i;
    }
    parser.feed(wire.data() + wire.size() - 1, 1);
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.path, "/check");
    EXPECT_EQ(request.query, "x=1");
    EXPECT_EQ(request.body, "hello");
    EXPECT_EQ(request.headers.at("host"), "t");
    EXPECT_TRUE(request.keepAlive);
    EXPECT_TRUE(parser.idle());
}

TEST(HttpParser, PipelinedRequestsShareOneReadBuffer)
{
    const std::string wire =
        "POST /check HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"
        "GET /healthz HTTP/1.1\r\n\r\n"
        "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
    server::HttpParser parser;
    // Deliver everything but the last request's final byte in one
    // feed(): the first two must frame, the third must wait.
    parser.feed(wire.data(), wire.size() - 1);
    server::HttpRequest request;
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_EQ(request.body, "ab");
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_EQ(request.path, "/healthz");
    EXPECT_TRUE(request.keepAlive);
    ASSERT_EQ(parser.next(request), ParseResult::NeedMore);
    EXPECT_FALSE(parser.idle());
    parser.feed(wire.data() + wire.size() - 1, 1);
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_EQ(request.path, "/metrics");
    EXPECT_FALSE(request.keepAlive);  // explicit close
    EXPECT_TRUE(parser.idle());
}

TEST(HttpParser, BareLfAndHttp10FramingAreHandled)
{
    // Hand-rolled peers send bare-LF line endings; HTTP/1.0 peers
    // default to one-shot connections unless they opt in.
    server::HttpParser parser;
    const std::string wire =
        "GET /healthz HTTP/1.0\nHost: t\n\n"
        "GET /healthz HTTP/1.0\nConnection: keep-alive\n\n";
    parser.feed(wire.data(), wire.size());
    server::HttpRequest request;
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_EQ(request.path, "/healthz");
    EXPECT_FALSE(request.keepAlive);  // 1.0 default
    ASSERT_EQ(parser.next(request), ParseResult::Ready);
    EXPECT_TRUE(request.keepAlive);   // 1.0 opt-in
}

TEST(HttpParser, OversizedHeaderBlockGets431AndSticks)
{
    server::HttpLimits limits;
    limits.maxHeaderBytes = 128;
    server::HttpParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
    wire += std::string(256, 'a');  // never terminated
    parser.feed(wire.data(), wire.size());
    server::HttpRequest request;
    ASSERT_EQ(parser.next(request), ParseResult::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
    // Errors are sticky: more bytes cannot revive the stream.
    parser.feed("\r\n\r\n", 4);
    EXPECT_EQ(parser.next(request), ParseResult::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, OversizedBodyIsRefusedBeforeBuffering)
{
    server::HttpLimits limits;
    limits.maxBodyBytes = 64;
    server::HttpParser parser(limits);
    // The declared Content-Length alone must trigger the 413 — no
    // body byte has been delivered, and none is ever buffered.
    const std::string head =
        "POST /check HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
    parser.feed(head.data(), head.size());
    server::HttpRequest request;
    ASSERT_EQ(parser.next(request), ParseResult::Error);
    EXPECT_EQ(parser.errorStatus(), 413);
    EXPECT_LT(parser.bufferedBytes(), limits.maxBodyBytes);
}

TEST(HttpParser, ProtocolErrorsGetTheRightStatus)
{
    struct Case { const char *wire; int status; };
    const Case cases[] = {
        {"POST /check HTTP/1.1\r\n"
         "Transfer-Encoding: chunked\r\n\r\n", 501},
        {"POST /check HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
        {"POST /check HTTP/1.1\r\n\r\n", 411},
        {"NOT-HTTP\r\n\r\n", 400},
    };
    for (const Case &c : cases) {
        server::HttpParser parser;
        parser.feed(c.wire, std::strlen(c.wire));
        server::HttpRequest request;
        ASSERT_EQ(parser.next(request), ParseResult::Error) << c.wire;
        EXPECT_EQ(parser.errorStatus(), c.status) << c.wire;
    }
}

TEST(HttpParser, RandomChunkingNeverChangesTheFrames)
{
    // Fuzz-style determinism check: one byte stream of several
    // pipelined requests must parse to the same frames no matter how
    // the transport slices it.
    std::string wire;
    std::vector<std::string> bodies;
    for (int i = 0; i < 8; ++i) {
        std::string body = "body-" + std::to_string(i) +
            std::string(static_cast<std::size_t>(i * 7), 'x');
        bodies.push_back(body);
        wire += "POST /check HTTP/1.1\r\nHost: fuzz\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
    }

    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int round = 0; round < 32; ++round) {
        server::HttpParser parser;
        std::vector<std::string> got;
        std::size_t off = 0;
        while (off < wire.size()) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            std::size_t n = 1 + (rng >> 33) % 37;
            n = std::min(n, wire.size() - off);
            parser.feed(wire.data() + off, n);
            off += n;
            server::HttpRequest request;
            while (parser.next(request) == ParseResult::Ready)
                got.push_back(request.body);
            ASSERT_NE(parser.result(), ParseResult::Error);
        }
        ASSERT_EQ(got, bodies) << "round " << round;
    }
}

// ---------------------------------------------------------------------
// Cacheability: canonical keys, ETags, conditional requests
// ---------------------------------------------------------------------

TEST(Cacheability, EquivalentBodiesModuloKeyOrderShareAnETag)
{
    // Same request content, different JSON key order and whitespace.
    const std::string a =
        "{\"test\":\"T\",\"variants\":[\"base\"],\"deadline_ms\":5000}";
    const std::string b =
        "{ \"deadline_ms\" : 5000 ,\n  \"variants\" : [ \"base\" ],\n"
        "  \"test\" : \"T\" }";
    std::string keyA = server::CheckRequest::fromJson(a).canonicalKey();
    std::string keyB = server::CheckRequest::fromJson(b).canonicalKey();
    EXPECT_EQ(keyA, keyB);
    EXPECT_EQ(server::verdictETag(keyA, engine::kModelRevision),
              server::verdictETag(keyB, engine::kModelRevision));

    // sleep_ms is a test hook that cannot change verdicts — excluded.
    std::string keyHook =
        server::CheckRequest::fromJson(
                   "{\"test\":\"T\",\"variants\":[\"base\"],"
                   "\"deadline_ms\":5000,\"sleep_ms\":50}")
            .canonicalKey();
    EXPECT_EQ(keyA, keyHook);

    // Anything that can change the answer must change the key.
    EXPECT_NE(keyA, server::CheckRequest::fromJson(
                        "{\"test\":\"U\",\"variants\":[\"base\"],"
                        "\"deadline_ms\":5000}")
                        .canonicalKey());
    EXPECT_NE(keyA, server::CheckRequest::fromJson(
                        "{\"test\":\"T\",\"variants\":[\"SEA_RW\"],"
                        "\"deadline_ms\":5000}")
                        .canonicalKey());
    EXPECT_NE(keyA, server::CheckRequest::fromJson(
                        "{\"test\":\"T\",\"variants\":[\"base\"],"
                        "\"deadline_ms\":6000}")
                        .canonicalKey());
}

TEST(Cacheability, RevisionBumpChangesTheETag)
{
    const std::string key =
        server::CheckRequest::fromJson(
            "{\"test\":\"T\",\"variants\":[\"base\"]}")
            .canonicalKey();
    EXPECT_EQ(server::verdictETag(key, "r1"),
              server::verdictETag(key, "r1"));
    EXPECT_NE(server::verdictETag(key, "r1"),
              server::verdictETag(key, "r2"));

    // Shape: a quoted 16-hex-digit strong validator.
    std::string etag = server::verdictETag(key, engine::kModelRevision);
    ASSERT_EQ(etag.size(), 18u);
    EXPECT_EQ(etag.front(), '"');
    EXPECT_EQ(etag.back(), '"');
    for (std::size_t i = 1; i + 1 < etag.size(); ++i)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(etag[i])));
}

TEST(Cacheability, DeterministicChecksAdvertisePublicCaching)
{
    DirectService d;
    server::HttpResponse r = d.request(
        "POST", "/check",
        server::checkRequestJson(
            TestRegistry::instance().sourceText("SB+pos"), {"base"}));
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.extraHeaders["Cache-Control"], "public, max-age=86400");
    EXPECT_FALSE(r.extraHeaders["ETag"].empty());
}

TEST(Cacheability, BudgetTrippedChecksAreNoStore)
{
    DirectService d;
    server::HttpResponse r = d.request(
        "POST", "/check",
        server::checkRequestJson(
            TestRegistry::instance().sourceText("MP+dmb.sys"), {"base"},
            0, 0, /*maxCandidates=*/1));
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("ExhaustedBudget"), std::string::npos);
    EXPECT_EQ(r.extraHeaders["Cache-Control"], "no-store");
    EXPECT_FALSE(r.extraHeaders["ETag"].empty());
}

TEST(Cacheability, GetAliasMatchesThePostRoute)
{
    DirectService d;
    server::HttpResponse post = d.request(
        "POST", "/check",
        server::checkRequestJson(
            TestRegistry::instance().sourceText("SB+pos"),
            {"base", "SEA_RW"}));
    ASSERT_EQ(post.status, 200);

    server::HttpRequest req;
    req.method = "GET";
    req.path = "/check/SB+pos";
    req.query = "variants=base,SEA_RW";
    server::HttpResponse get = d.service.handle(req);
    ASSERT_EQ(get.status, 200);
    EXPECT_EQ(get.extraHeaders["ETag"], post.extraHeaders["ETag"]);

    // Bodies match modulo schedule-dependent fields.
    auto stableBody = [](const std::string &body) {
        std::string out;
        for (const std::string &line : split(body, '\n'))
            if (!trim(line).empty())
                out += stabilise(trim(line)) + "\n";
        return out;
    };
    EXPECT_EQ(stableBody(get.body), stableBody(post.body));

    // Unknown builtins 404; unknown query parameters 400.
    req.path = "/check/NoSuchTest";
    req.query = "";
    EXPECT_EQ(d.service.handle(req).status, 404);
    req.path = "/check/SB+pos";
    req.query = "bogus=1";
    EXPECT_EQ(d.service.handle(req).status, 400);
    // POSTing to the alias is a method error, with Allow.
    req.method = "POST";
    req.query = "";
    server::HttpResponse wrong = d.service.handle(req);
    EXPECT_EQ(wrong.status, 405);
    EXPECT_EQ(wrong.extraHeaders["Allow"], "GET");
}

TEST(Cacheability, IfNoneMatchHitAnswers304WithoutTheEngine)
{
    DirectService d;
    const std::string body = server::checkRequestJson(
        TestRegistry::instance().sourceText("SB+pos"), {"base"});
    server::HttpResponse first = d.request("POST", "/check", body);
    ASSERT_EQ(first.status, 200);
    const std::string etag = first.extraHeaders["ETag"];
    ASSERT_FALSE(etag.empty());

    server::HttpRequest req;
    req.method = "POST";
    req.path = "/check";
    req.body = body;
    req.headers["if-none-match"] = etag;
    server::HttpResponse out;
    ASSERT_TRUE(d.service.tryNotModified(req, out));
    EXPECT_EQ(out.status, 304);
    EXPECT_EQ(out.extraHeaders["ETag"], etag);
    EXPECT_EQ(d.metrics.http304.load(), 1u);
    EXPECT_EQ(d.metrics.responses304.load(), 1u);

    // A stale validator falls through to the full path...
    req.headers["if-none-match"] = "\"0000000000000000\"";
    EXPECT_FALSE(d.service.tryNotModified(req, out));
    // ...as does a request with no validator at all.
    req.headers.erase("if-none-match");
    EXPECT_FALSE(d.service.tryNotModified(req, out));
    // A wildcard matches anything, as RFC 9110 requires.
    req.headers["if-none-match"] = "*";
    EXPECT_TRUE(d.service.tryNotModified(req, out));
}

// ---------------------------------------------------------------------
// Live server integration
// ---------------------------------------------------------------------

/** Tests the acceptance bar drives against one shared live daemon. */
class LiveServer : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        engine::EngineConfig config;
        config.jobs = 2;
        config.cacheEnabled = true;
        config.cacheDir = "";  // in-memory: hit/miss counters only
        config.resultsPath = scratchDir("live") + "/rexd.jsonl";
        _engine = std::make_unique<engine::Engine>(config);

        server::ServerConfig server_config;
        server_config.threads = 4;
        server_config.maxQueue = 32;
        _server = std::make_unique<server::RexServer>(*_engine,
                                                      server_config);
        _server->start();
    }

    void
    TearDown() override
    {
        _server->requestDrain();
        _server->join();
    }

    server::Client
    client()
    {
        return server::Client("127.0.0.1", _server->port());
    }

    std::unique_ptr<engine::Engine> _engine;
    std::unique_ptr<server::RexServer> _server;
};

TEST_F(LiveServer, HealthAndMetricsRespond)
{
    EXPECT_TRUE(client().healthy());
    server::ClientResponse metrics = client().get("/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("rexd_requests_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("rexd_stage_seconds_bucket"),
              std::string::npos);
}

TEST_F(LiveServer, ConcurrentClientsGetByteIdenticalVerdicts)
{
    // Eight concurrent clients, each checking its own builtin test
    // under the full paper matrix, twice (second round = cache hits).
    const std::vector<std::string> tests = {
        "SB+pos",          "MP+pos",          "SB+dmb.sys",
        "MP+dmb.sys",      "SB+dmb.sy+eret",  "MP+dmb.sy+addr",
        "MP+dmb.sy+fault", "LB+pos",
    };
    std::vector<std::string> variants;
    for (const ModelParams &params : ModelParams::paperVariants())
        variants.push_back(params.name());

    // Expected bodies from a private engine running the same wire
    // text through the same record renderer — the direct checker.
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        for (const std::string &v : variants) {
            engine::JobRecord record =
                direct.verdictRecord(test, ModelParams::byName(v));
            record.wallMicros = 0;
            record.cacheHit = false;
            expected[i] += record.toJson() + "\n";
        }
    }

    for (int round = 0; round < 2; ++round) {
        std::vector<std::string> got(tests.size());
        std::vector<std::thread> workers;
        std::atomic<int> failures{0};
        for (std::size_t i = 0; i < tests.size(); ++i) {
            workers.emplace_back([&, i] {
                try {
                    server::Client c("127.0.0.1", _server->port());
                    server::ClientResponse r = c.check(
                        TestRegistry::instance().sourceText(tests[i]),
                        variants);
                    if (r.status != 200) {
                        ++failures;
                        return;
                    }
                    for (const std::string &line : split(r.body, '\n')) {
                        if (!trim(line).empty())
                            got[i] += stabilise(line) + "\n";
                    }
                } catch (...) {
                    ++failures;
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        ASSERT_EQ(failures.load(), 0) << "round " << round;
        for (std::size_t i = 0; i < tests.size(); ++i)
            EXPECT_EQ(got[i], expected[i]) << tests[i];
    }

    // Round two re-checked every (test × variant) pair: at least 90%
    // of all verdicts must have come from the shared cache.
    std::string exposition = client().get("/metrics").body;
    double hits = metricValue(exposition, "rexd_cache_hits_total");
    double misses = metricValue(exposition, "rexd_cache_misses_total");
    ASSERT_GE(hits, 0.0);
    ASSERT_GT(hits + misses, 0.0);
    EXPECT_GE(hits / (hits + misses), 0.45);  // whole-run ratio
    // Round 2 alone: every one of its verdicts was a hit.
    double total = tests.size() * variants.size() * 2.0;
    EXPECT_GE(hits, 0.9 * (total / 2.0));
}

TEST_F(LiveServer, OversizedBodyGets413)
{
    std::string huge(_server->config().limits.maxBodyBytes + 1, 'x');
    server::ClientResponse r = client().post("/check", huge);
    EXPECT_EQ(r.status, 413);
}

TEST_F(LiveServer, MalformedJsonGets400)
{
    server::ClientResponse r = client().post("/check", "{oops");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("error"), std::string::npos);
}

TEST_F(LiveServer, ConditionalRequestAnswers304WithoutTheEngine)
{
    const std::string &text =
        TestRegistry::instance().sourceText("SB+pos");
    const std::string body = server::checkRequestJson(text, {"base"});

    server::ClientResponse first = client().post("/check", body);
    ASSERT_EQ(first.status, 200);
    const std::string etag = first.headers["etag"];
    ASSERT_FALSE(etag.empty());
    EXPECT_NE(first.headers["cache-control"].find("public"),
              std::string::npos);

    // Engine-activity watermark before the conditional request.
    std::string before = client().get("/metrics").body;
    double hitsBefore = metricValue(before, "rexd_cache_hits_total");
    double missesBefore = metricValue(before, "rexd_cache_misses_total");
    double checksBefore = metricValue(
        before, "rexd_stage_seconds_count{stage=\"check\"}");

    server::ClientResponse cond = client().post(
        "/check", body, "application/json", {{"If-None-Match", etag}});
    EXPECT_EQ(cond.status, 304);
    EXPECT_TRUE(cond.body.empty());
    EXPECT_EQ(cond.headers["etag"], etag);

    // The 304 was answered on the event loop: no cache lookup, no
    // check stage, no pool dispatch — only the counter moved.
    std::string after = client().get("/metrics").body;
    EXPECT_EQ(metricValue(after, "rexd_http_304_total"), 1.0);
    EXPECT_EQ(metricValue(after, "rexd_cache_hits_total"), hitsBefore);
    EXPECT_EQ(metricValue(after, "rexd_cache_misses_total"),
              missesBefore);
    EXPECT_EQ(metricValue(after,
                          "rexd_stage_seconds_count{stage=\"check\"}"),
              checksBefore);

    // A stale validator takes the full path and re-serves the body.
    server::ClientResponse stale = client().post(
        "/check", body, "application/json",
        {{"If-None-Match", "\"0123456789abcdef\""}});
    EXPECT_EQ(stale.status, 200);
    EXPECT_EQ(stale.headers["etag"], etag);
    EXPECT_FALSE(stale.body.empty());
}

TEST_F(LiveServer, GetAliasServesBuiltinsOverTheWire)
{
    server::ClientResponse get =
        client().get("/check/SB+pos?variants=base,SEA_RW");
    ASSERT_EQ(get.status, 200);

    server::ClientResponse post = client().post(
        "/check",
        server::checkRequestJson(
            TestRegistry::instance().sourceText("SB+pos"),
            {"base", "SEA_RW"}));
    ASSERT_EQ(post.status, 200);
    EXPECT_EQ(get.headers["etag"], post.headers["etag"]);

    auto stableBody = [](const std::string &body) {
        std::string out;
        for (const std::string &line : split(body, '\n'))
            if (!trim(line).empty())
                out += stabilise(trim(line)) + "\n";
        return out;
    };
    EXPECT_EQ(stableBody(get.body), stableBody(post.body));

    // The alias is conditional-request-capable end to end.
    server::ClientResponse cond = client().get(
        "/check/SB+pos?variants=base,SEA_RW",
        {{"If-None-Match", get.headers["etag"]}});
    EXPECT_EQ(cond.status, 304);

    EXPECT_EQ(client().get("/check/NoSuchTest").status, 404);
}

TEST_F(LiveServer, KeepAliveConnectionServesManyRequests)
{
    int fd = connectTo(_server->port());
    const std::string probe =
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    std::string responses;
    char chunk[4096];
    for (int i = 0; i < 5; ++i) {
        std::string wire = probe;
        if (i == 4)  // last request asks the server to close
            wire = "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                   "Connection: close\r\n\r\n";
        ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
        if (i == 0) {
            // While the connection sits open: the gauge sees it (plus
            // the /metrics connection doing the asking).
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            ASSERT_GT(n, 0);
            responses.append(chunk, static_cast<std::size_t>(n));
            std::string expo = client().get("/metrics").body;
            EXPECT_GE(metricValue(expo, "rexd_open_connections"), 1.0);
        } else if (i < 4) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            ASSERT_GT(n, 0);
            responses.append(chunk, static_cast<std::size_t>(n));
        }
    }
    responses += recvToEof(fd);
    ::close(fd);

    // Five responses on one connection, the last one marked close.
    std::size_t count = 0;
    for (std::size_t pos = responses.find("HTTP/1.1 200");
         pos != std::string::npos;
         pos = responses.find("HTTP/1.1 200", pos + 1))
        ++count;
    EXPECT_EQ(count, 5u);
    EXPECT_NE(responses.find("Connection: keep-alive"),
              std::string::npos);
    EXPECT_NE(responses.find("Connection: close"), std::string::npos);

    // The per-connection request histogram saw a 5-request close.
    std::string expo = client().get("/metrics").body;
    EXPECT_GE(metricValue(
                  expo, "rexd_keepalive_requests_per_connection_sum"),
              5.0);
    EXPECT_GE(
        metricValue(
            expo,
            "rexd_keepalive_requests_per_connection_bucket{le=\"5\"}"),
        1.0);
}

TEST_F(LiveServer, PipelinedRequestsAnswerInArrivalOrder)
{
    // Three pipelined requests in one write: an engine-bound /check,
    // then two loop-answered probes. The responses must come back in
    // arrival order even though the probes are ready first.
    const std::string body = server::checkRequestJson(
        TestRegistry::instance().sourceText("SB+pos"), {"base"});
    std::string wire =
        "POST /check HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body +
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";

    int fd = connectTo(_server->port());
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    std::string reply = recvToEof(fd);
    ::close(fd);

    std::size_t check = reply.find("HTTP/1.1 200");
    ASSERT_NE(check, std::string::npos) << reply;
    std::size_t health = reply.find("HTTP/1.1 200", check + 1);
    ASSERT_NE(health, std::string::npos) << reply;
    std::size_t missing = reply.find("HTTP/1.1 404");
    ASSERT_NE(missing, std::string::npos) << reply;
    EXPECT_LT(check, health);
    EXPECT_LT(health, missing);
    // The verdict body sits between the first two status lines.
    std::size_t verdict = reply.find("\"test\":\"SB+pos\"");
    ASSERT_NE(verdict, std::string::npos);
    EXPECT_GT(verdict, check);
    EXPECT_LT(verdict, health);
}

TEST_F(LiveServer, AdversarialDeadlineIsBoundedWhileOthersUnaffected)
{
    // The acceptance bar: one client posts the adversarial test with a
    // 200ms deadline and gets a structured exhausted_budget verdict in
    // well under a second, while concurrent unbudgeted clients keep
    // getting byte-identical verdicts throughout.
    const std::vector<std::string> tests = {"SB+pos", "MP+dmb.sys",
                                            "LB+pos", "SB+dmb.sys"};
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        engine::JobRecord record =
            direct.verdictRecord(test, ModelParams::base());
        record.wallMicros = 0;
        record.cacheHit = false;
        expected[i] = record.toJson() + "\n";
    }

    std::atomic<int> failures{0};
    std::vector<std::string> got(tests.size());
    std::vector<std::thread> bystanders;
    for (std::size_t i = 0; i < tests.size(); ++i) {
        bystanders.emplace_back([&, i] {
            try {
                server::Client c("127.0.0.1", _server->port());
                server::ClientResponse r = c.check(
                    TestRegistry::instance().sourceText(tests[i]),
                    {"base"});
                if (r.status != 200) {
                    ++failures;
                    return;
                }
                got[i] = stabilise(trim(r.body)) + "\n";
            } catch (...) {
                ++failures;
            }
        });
    }

    const auto start = std::chrono::steady_clock::now();
    server::ClientResponse adversarial =
        client().check(kAdversarialTest, {"base"}, 0, /*deadlineMs=*/200);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    for (std::thread &w : bystanders)
        w.join();

    ASSERT_EQ(adversarial.status, 200);
    server::JsonValue record =
        server::parseJson(trim(adversarial.body));
    EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
    ASSERT_NE(record.find("exhausted_axis"), nullptr);
    EXPECT_EQ(record.find("exhausted_axis")->string, "deadline");
    const std::string stage = record.find("stage")->string;
    EXPECT_TRUE(stage == "traces" || stage == "plan" ||
                stage == "enumerate" || stage == "merge")
        << stage;
    EXPECT_LT(elapsed.count(), 500);

    ASSERT_EQ(failures.load(), 0);
    for (std::size_t i = 0; i < tests.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << tests[i];

    std::string exposition = client().get("/metrics").body;
    EXPECT_GE(metricValue(exposition,
                          "rexd_budget_trips_total{axis=\"deadline\"}"),
              1.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"exhausted_budget\"}"),
        1.0);
}

TEST_F(LiveServer, CandidateCeilingTripIsDeterministicAndUncached)
{
    // max_candidates is the exactly-deterministic axis: the same
    // budgeted request yields the same partial record every time, and
    // exhausted verdicts never come from (or poison) the cache.
    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        server::ClientResponse r = client().check(
            text, {"base"}, 0, 0, /*maxCandidates=*/1);
        ASSERT_EQ(r.status, 200);
        server::JsonValue record = server::parseJson(trim(r.body));
        EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
        EXPECT_EQ(record.find("exhausted_axis")->string, "candidates");
        EXPECT_EQ(record.find("candidates")->integer, 1);
        EXPECT_FALSE(record.find("cache_hit")->boolean);
        *out = stabilise(trim(r.body));
    }
    EXPECT_EQ(first, second);

    // An unbudgeted check of the same test is unaffected by the
    // exhausted runs and serves the full verdict.
    server::ClientResponse full = client().check(text, {"base"});
    ASSERT_EQ(full.status, 200);
    EXPECT_EQ(server::parseJson(trim(full.body)).find("verdict")->string,
              "Forbidden");
}

TEST(ServerBudgetCaps, CapsClampEveryRequestIncludingUnbudgeted)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 2;
    config.maxCandidates = 1;  // server-wide ceiling
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");
    server::Client c("127.0.0.1", server.port());

    // A request asking for no budget at all is still capped...
    server::ClientResponse unbudgeted = c.check(text, {"base"});
    ASSERT_EQ(unbudgeted.status, 200);
    server::JsonValue record =
        server::parseJson(trim(unbudgeted.body));
    EXPECT_EQ(record.find("verdict")->string, "ExhaustedBudget");
    EXPECT_EQ(record.find("candidates")->integer, 1);

    // ...and a request asking for more than the cap is clamped down.
    server::ClientResponse greedy =
        c.check(text, {"base"}, 0, 0, /*maxCandidates=*/100);
    ASSERT_EQ(greedy.status, 200);
    EXPECT_EQ(server::parseJson(trim(greedy.body))
                  .find("candidates")
                  ->integer,
              1);

    server.requestDrain();
    server.join();
}

TEST(ServerReadTimeout, SlowLorisGets408AndIsCountedDistinctly)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.limits.ioTimeoutSeconds = 1;
    server::RexServer server(engine, config);
    server.start();

    // Open a connection, send half a request line, and stall: the
    // per-socket read timeout must answer 408 (not 400) and count it
    // in both the response and read-timeout counters.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *partial = "POST /check HT";
    ASSERT_EQ(::send(fd, partial, std::strlen(partial), 0),
              static_cast<ssize_t>(std::strlen(partial)));

    std::string reply;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        reply.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    EXPECT_NE(reply.find("HTTP/1.1 408"), std::string::npos) << reply;

    server.requestDrain();
    server.join();
    EXPECT_EQ(server.metrics().responses408.load(), 1u);
    EXPECT_EQ(server.metrics().readTimeouts.load(), 1u);
    EXPECT_EQ(server.metrics().responses400.load(), 0u);
}

TEST(ServerIdleTimeout, IdleKeepAliveConnectionsAreClosedAndCounted)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.idleTimeoutSeconds = 1;
    server::RexServer server(engine, config);
    server.start();

    // Complete one request so the connection is parked between
    // requests, then go quiet: the idle deadline must close it —
    // silently (no 408: an idle peer owes the server nothing).
    int fd = connectTo(server.port());
    const std::string probe =
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    ASSERT_EQ(::send(fd, probe.data(), probe.size(), 0),
              static_cast<ssize_t>(probe.size()));
    std::string reply = recvToEof(fd);  // response, then idle close
    ::close(fd);
    EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_EQ(reply.find("HTTP/1.1 408"), std::string::npos);

    server.requestDrain();
    server.join();
    EXPECT_EQ(server.metrics().idleTimeouts.load(), 1u);
    EXPECT_EQ(server.metrics().responses408.load(), 0u);
    EXPECT_EQ(server.metrics().readTimeouts.load(), 0u);
}

TEST(ServerCeiling, ConnectionsBeyondTheCeilingAreShedWith503)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.maxConnections = 2;
    server::RexServer server(engine, config);
    server.start();

    // Fill the ceiling with two live keep-alive connections...
    const std::string probe =
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    int held[2];
    for (int &fd : held) {
        fd = connectTo(server.port());
        ASSERT_EQ(::send(fd, probe.data(), probe.size(), 0),
                  static_cast<ssize_t>(probe.size()));
        char chunk[4096];
        ASSERT_GT(::recv(fd, chunk, sizeof(chunk), 0), 0);
    }

    // ...and the third accept is shed before reading a single byte.
    int extra = connectTo(server.port());
    std::string reply = recvToEof(extra);
    ::close(extra);
    EXPECT_NE(reply.find("HTTP/1.1 503"), std::string::npos) << reply;
    EXPECT_NE(reply.find("Retry-After:"), std::string::npos) << reply;

    // The held connections still work after the shed.
    for (int fd : held) {
        ASSERT_EQ(::send(fd, probe.data(), probe.size(), 0),
                  static_cast<ssize_t>(probe.size()));
        char chunk[4096];
        ASSERT_GT(::recv(fd, chunk, sizeof(chunk), 0), 0);
        ::close(fd);
    }

    server.requestDrain();
    server.join();
    EXPECT_GE(server.metrics().queueRejected.load(), 1u);
    EXPECT_GE(server.metrics().responses503.load(), 1u);
}

TEST(ClientKeepAlive, PooledConnectionDropIsRepairedWithoutARetry)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.idleTimeoutSeconds = 1;
    server::RexServer server(engine, config);
    server.start();

    // Retries stay disabled (maxAttempts 1): the reconnect after the
    // server drops the pooled connection must be the free one.
    server::Client c("127.0.0.1", server.port());
    c.setKeepAlive(true);
    EXPECT_EQ(c.get("/healthz").status, 200);

    // Let the server's idle timeout reap the pooled connection.
    std::this_thread::sleep_for(std::chrono::milliseconds(3500));
    EXPECT_EQ(c.get("/healthz").status, 200);
    EXPECT_EQ(c.get("/healthz").status, 200);  // and the pool still works

    server.requestDrain();
    server.join();
    EXPECT_GE(server.metrics().idleTimeouts.load(), 1u);
}

TEST(ClientRetry, TransportErrorsAreRetriedWithBackoff)
{
    // Port 1 refuses immediately; three attempts must sleep through
    // two backoff rounds (~40ms + ~80ms, +-25% jitter) before the
    // final failure surfaces.
    server::Client c("127.0.0.1", 1);
    server::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialDelayMs = 40;
    policy.totalDeadlineMs = 10000;
    c.setRetryPolicy(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(c.get("/healthz"), FatalError);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_GE(elapsed.count(), 90);  // 30 + 60: both floors of the jitter
}

TEST(ClientRetry, TotalDeadlineShortCircuitsTheSleep)
{
    server::Client c("127.0.0.1", 1);
    server::RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.initialDelayMs = 500;
    policy.totalDeadlineMs = 100;  // first backoff would overrun it
    c.setRetryPolicy(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(c.get("/healthz"), FatalError);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 400);
}

TEST(ServerBackpressure, FullQueueShedsWith503)
{
    engine::Engine engine{plainConfig(1)};
    server::ServerConfig config;
    config.threads = 1;
    config.maxQueue = 1;
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("SB+pos");

    // Pin the single handler thread with a sleeping request, then
    // flood: with one handler busy and a one-slot queue, most of the
    // flood must be shed with 503 + Retry-After.
    std::thread pinned([&] {
        try {
            server::Client c("127.0.0.1", server.port());
            c.check(text, {"base"}, 700);
        } catch (...) {
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    std::atomic<int> shed{0}, served{0};
    bool saw_retry_after = false;
    std::mutex retry_mutex;
    std::vector<std::thread> flood;
    for (int i = 0; i < 8; ++i) {
        flood.emplace_back([&] {
            try {
                server::Client c("127.0.0.1", server.port());
                server::ClientResponse r = c.check(text, {"base"}, 300);
                if (r.status == 503) {
                    ++shed;
                    std::lock_guard<std::mutex> lock(retry_mutex);
                    if (r.headers.count("retry-after"))
                        saw_retry_after = true;
                } else if (r.status == 200) {
                    ++served;
                }
            } catch (...) {
            }
        });
    }
    for (std::thread &w : flood)
        w.join();
    pinned.join();

    EXPECT_GT(shed.load(), 0);
    EXPECT_TRUE(saw_retry_after);
    EXPECT_GT(served.load(), 0);

    server.requestDrain();
    server.join();
    EXPECT_EQ(server.metrics().queueRejected.load(),
              static_cast<std::uint64_t>(shed.load()));
}

TEST(ServerDrain, InFlightRequestsFinishAndResultsFileIsComplete)
{
    std::string dir = scratchDir("drain");
    engine::EngineConfig engine_config;
    engine_config.jobs = 2;
    engine_config.cacheEnabled = false;
    engine_config.resultsPath = dir + "/rexd.jsonl";
    engine::Engine engine{engine_config};

    server::ServerConfig config;
    config.threads = 2;
    config.maxQueue = 16;
    server::RexServer server(engine, config);
    server.start();

    const std::string &text =
        TestRegistry::instance().sourceText("MP+dmb.sys");

    // Six slow requests in flight, then drain mid-stream.
    std::atomic<int> ok{0}, other{0};
    std::vector<std::thread> workers;
    for (int i = 0; i < 6; ++i) {
        workers.emplace_back([&] {
            server::Client c("127.0.0.1", server.port());
            server::ClientResponse r =
                c.check(text, {"base", "SEA_RW"}, 200);
            (r.status == 200 ? ok : other)++;
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.requestDrain();
    server.join();
    for (std::thread &w : workers)
        w.join();

    // Everything accepted before the drain was served in full; the
    // JSONL results file holds only complete, parseable records.
    EXPECT_EQ(ok.load() + other.load(), 6);
    EXPECT_GT(ok.load(), 0);

    std::ifstream in(engine_config.resultsPath);
    ASSERT_TRUE(in.good());
    std::string line;
    std::uint64_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NO_THROW(server::parseJson(line)) << line;
        EXPECT_EQ(line.back(), '}');
    }
    // One record per served verdict, none truncated, none lost.
    EXPECT_EQ(lines, static_cast<std::uint64_t>(ok.load()) * 2u);
    EXPECT_EQ(lines, engine.results().records());

    // A post-drain connection is refused (the listener is closed).
    server::Client late("127.0.0.1", server.port());
    EXPECT_FALSE(late.healthy());
}

// ---------------------------------------------------------------------
// Supervised workers: crash containment, hard deadlines, quarantine
// ---------------------------------------------------------------------

/** Disarm the process-wide fault injector on scope exit, pass or fail. */
struct FaultGuard {
    ~FaultGuard() { engine::faultInjector().configure(""); }
};

/** A rexd stack with process-isolated workers, torn down in order. */
struct SupervisedStack {
    explicit SupervisedStack(unsigned workers, unsigned quarantine = 3,
                             std::uint64_t killGraceMs = 2000)
    {
        engine::EngineConfig config;
        config.jobs = 2;
        config.cacheEnabled = false;
        config.workers = workers;
        config.crashQuarantine = quarantine;
        config.killGraceMs = killGraceMs;
        engine = std::make_unique<engine::Engine>(config);

        server::ServerConfig server_config;
        server_config.threads = 4;
        server_config.maxQueue = 32;
        server = std::make_unique<server::RexServer>(*engine,
                                                     server_config);
        server->start();
    }

    ~SupervisedStack()
    {
        server->requestDrain();
        server->join();
    }

    server::ClientResponse
    check(const std::string &name, std::int64_t deadlineMs = 0)
    {
        server::Client c("127.0.0.1", server->port());
        return c.check(TestRegistry::instance().sourceText(name),
                       {"base"}, 0, deadlineMs);
    }

    std::string
    metricsBody()
    {
        server::Client c("127.0.0.1", server->port());
        return c.get("/metrics").body;
    }

    std::unique_ptr<engine::Engine> engine;
    std::unique_ptr<server::RexServer> server;
};

TEST(SupervisedServer, HungWorkerIsKilledWhileConcurrentVerdictsMatch)
{
    // The acceptance bar: one request's worker wedges mid-job; it is
    // SIGKILLed at the hard deadline and answered with a CrashedWorker
    // record, while requests served concurrently — during the hang —
    // come back byte-identical to a direct, unsupervised engine.
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/2, /*quarantine=*/3,
                          /*killGraceMs=*/400);

    const std::vector<std::string> tests = {"SB+pos", "MP+dmb.sys",
                                            "LB+pos", "SB+dmb.sys"};
    std::vector<std::string> expected(tests.size());
    engine::Engine direct{plainConfig()};
    for (std::size_t i = 0; i < tests.size(); ++i) {
        LitmusTest test = parseLitmus(
            TestRegistry::instance().sourceText(tests[i]));
        engine::JobRecord record =
            direct.verdictRecord(test, ModelParams::base());
        record.wallMicros = 0;
        record.cacheHit = false;
        expected[i] = record.toJson() + "\n";
    }

    engine::faultInjector().configure("worker-hang:1.0:7");
    std::string victimBody;
    const auto start = std::chrono::steady_clock::now();
    std::thread victim([&] {
        victimBody = stack.check("MP+pos", /*deadlineMs=*/400).body;
    });
    // The hang decision is made in the parent at dispatch: once one is
    // injected the victim's worker is wedged, and disarming leaves the
    // bystanders' dispatches clean while it still spins.
    while (engine::faultInjector().injected(
               engine::FaultPoint::WorkerHang) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine::faultInjector().configure("");

    std::atomic<int> failures{0};
    std::vector<std::string> got(tests.size());
    std::vector<std::thread> bystanders;
    for (std::size_t i = 0; i < tests.size(); ++i) {
        bystanders.emplace_back([&, i] {
            try {
                server::ClientResponse r = stack.check(tests[i]);
                if (r.status != 200) {
                    ++failures;
                    return;
                }
                got[i] = stabilise(trim(r.body)) + "\n";
            } catch (...) {
                ++failures;
            }
        });
    }
    for (std::thread &w : bystanders)
        w.join();
    victim.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    // The spinning worker was SIGKILLed within deadline + grace (plus
    // scheduling slack), not left to wedge the slot forever.
    server::JsonValue record = server::parseJson(trim(victimBody));
    ASSERT_NE(record.find("verdict"), nullptr) << victimBody;
    EXPECT_EQ(record.find("verdict")->string, "CrashedWorker");
    ASSERT_NE(record.find("signal"), nullptr);
    EXPECT_EQ(record.find("signal")->string, "SIGKILL");
    EXPECT_GE(elapsed.count(), 400);
    EXPECT_LT(elapsed.count(), 5000);

    ASSERT_EQ(failures.load(), 0);
    for (std::size_t i = 0; i < tests.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << tests[i];

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition,
                          "rexd_worker_crashes_total{signal=\"SIGKILL\"}"),
              1.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"crashed_worker\"}"),
        1.0);
}

TEST(SupervisedServer, CrashedWorkerRespawnsAndTheNextVerdictIsClean)
{
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1);

    engine::faultInjector().configure("worker-crash:1.0:7");
    server::ClientResponse crashed = stack.check("MP+dmb.sys");
    ASSERT_EQ(crashed.status, 200);
    server::JsonValue record = server::parseJson(trim(crashed.body));
    EXPECT_EQ(record.find("verdict")->string, "CrashedWorker");
    EXPECT_EQ(record.find("signal")->string, "SIGSEGV");
    ASSERT_NE(record.find("crashes"), nullptr);
    EXPECT_EQ(record.find("crashes")->integer, 1);

    // Disarmed, the same request rides the respawned worker to the
    // verdict a direct engine computes — no supervision fields.
    engine::faultInjector().configure("");
    server::ClientResponse clean = stack.check("MP+dmb.sys");
    ASSERT_EQ(clean.status, 200);
    engine::Engine direct{plainConfig()};
    LitmusTest test = parseLitmus(
        TestRegistry::instance().sourceText("MP+dmb.sys"));
    engine::JobRecord expected =
        direct.verdictRecord(test, ModelParams::base());
    expected.wallMicros = 0;
    expected.cacheHit = false;
    EXPECT_EQ(stabilise(trim(clean.body)), expected.toJson());
    EXPECT_EQ(clean.body.find("\"signal\""), std::string::npos);

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition, "rexd_worker_crashes_total"), 1.0);
    EXPECT_GE(metricValue(exposition, "rexd_worker_respawns_total"),
              1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_workers_configured"), 1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_workers_live"), 1.0);
}

TEST(SupervisedServer, QuarantineTripsAfterRepeatCrashesAndIsMetered)
{
    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1, /*quarantine=*/2);

    engine::faultInjector().configure("worker-crash:1.0:7");
    for (int round = 0; round < 2; ++round) {
        server::ClientResponse r = stack.check("MP+pos");
        ASSERT_EQ(r.status, 200);
        EXPECT_EQ(server::parseJson(trim(r.body))
                      .find("verdict")->string,
                  "CrashedWorker")
            << "round " << round;
    }

    // Two crashes reached the threshold: even disarmed, the key is
    // answered from the ledger without dispatching a worker.
    engine::faultInjector().configure("");
    server::ClientResponse quarantined = stack.check("MP+pos");
    ASSERT_EQ(quarantined.status, 200);
    server::JsonValue record =
        server::parseJson(trim(quarantined.body));
    EXPECT_EQ(record.find("verdict")->string, "Quarantined");
    EXPECT_EQ(record.find("signal")->string, "SIGSEGV");
    EXPECT_EQ(record.find("crashes")->integer, 2);

    // Other keys are untouched by the quarantine.
    server::ClientResponse other = stack.check("SB+pos");
    ASSERT_EQ(other.status, 200);
    engine::Engine direct{plainConfig()};
    LitmusTest sb = parseLitmus(
        TestRegistry::instance().sourceText("SB+pos"));
    engine::JobRecord expected =
        direct.verdictRecord(sb, ModelParams::base());
    expected.wallMicros = 0;
    expected.cacheHit = false;
    EXPECT_EQ(stabilise(trim(other.body)), expected.toJson());

    std::string exposition = stack.metricsBody();
    EXPECT_GE(metricValue(exposition, "rexd_quarantined_total"), 1.0);
    EXPECT_EQ(metricValue(exposition, "rexd_quarantined_keys"), 1.0);
    EXPECT_GE(metricValue(exposition,
                          "rexd_worker_crashes_total{signal=\"SIGSEGV\"}"),
              2.0);
    EXPECT_GE(
        metricValue(exposition,
                    "rexd_verdicts_total{verdict=\"quarantined\"}"),
        1.0);
}

TEST(SupervisedServer, RetryCrashedPolicyRidesTheRespawnToAVerdict)
{
    // Find a seed whose first worker-crash draw fails and whose next
    // few pass, replicating the injector's splitmix64 mapping: the
    // first attempt crashes, the client's retry lands on the respawned
    // worker and gets the real verdict.
    auto draw = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    };
    const double p = 0.5;
    std::uint64_t seed = 0;
    for (;; ++seed) {
        if (draw(seed) >= p)
            continue;
        bool clean = true;
        for (std::uint64_t k = 1; k <= 8 && clean; ++k)
            clean = draw(seed + k) >= p;
        if (clean)
            break;
    }

    FaultGuard disarm;
    SupervisedStack stack(/*workers=*/1);
    engine::faultInjector().configure(
        format("worker-crash:0.5:%llu",
               static_cast<unsigned long long>(seed)));

    server::Client c("127.0.0.1", stack.server->port());
    server::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialDelayMs = 10;
    policy.retryCrashed = true;
    c.setRetryPolicy(policy);
    server::ClientResponse r = c.check(
        TestRegistry::instance().sourceText("MP+dmb.sys"), {"base"});
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(server::parseJson(trim(r.body)).find("verdict")->string,
              "Forbidden");
    EXPECT_EQ(engine::faultInjector().injected(
                  engine::FaultPoint::WorkerCrash),
              1u);
    EXPECT_GE(engine::faultInjector().checked(
                  engine::FaultPoint::WorkerCrash),
              2u);
}

// ---------------------------------------------------------------------
// POST /shard and peer fan-out
// ---------------------------------------------------------------------

/** POST @p body to /shard through @p service. */
server::HttpResponse
postShard(server::CheckService &service, const std::string &body)
{
    server::HttpRequest request;
    request.method = "POST";
    request.path = "/shard";
    request.body = body;
    return service.handle(request);
}

/** Open a sealed /shard 200 body and return its raw payload bytes;
 *  fails the test on a bad envelope. */
std::string
openedShardPayload(const server::HttpResponse &response,
                   const std::string &expectProgram = "")
{
    std::string payload;
    std::string error;
    EXPECT_TRUE(server::openShardEnvelope(response.body, expectProgram,
                                          engine::kModelRevision,
                                          payload, error))
        << error << "\nbody: " << response.body;
    return payload;
}

/** A /shard check-kind request for shards [begin, end) of @p source. */
std::string
shardCheckRequest(const std::string &source, const std::string &variant,
                  std::uint64_t begin, std::uint64_t end)
{
    return format(
        "{\"kind\":\"check\",\"test\":\"%s\",\"variant\":\"%s\","
        "\"shard_begin\":%llu,\"shard_end\":%llu,"
        "\"fingerprint\":\"%016llx\"}",
        engine::jsonEscape(source).c_str(), variant.c_str(),
        static_cast<unsigned long long>(begin),
        static_cast<unsigned long long>(end),
        static_cast<unsigned long long>(engine::shardJobFingerprint(
            source, variant, engine::kModelRevision,
            kCheckShardTarget)));
}

TEST(ShardRoute, ServesRangesAndRefusesDrift)
{
    engine::Engine engine(plainConfig());
    server::Metrics metrics;
    server::CheckService service(engine, metrics);
    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");

    // The whole range in one request...
    server::HttpResponse whole = postShard(
        service, shardCheckRequest(source, "base", 0, ~0ull));
    ASSERT_EQ(whole.status, 200) << whole.body;
    server::JsonValue wholeBody = server::parseJson(
        openedShardPayload(whole, "shard-check:base"));
    ASSERT_TRUE(wholeBody.find("planned")->boolean);
    ASSERT_TRUE(wholeBody.find("completed")->boolean);
    const std::int64_t planSize =
        wholeBody.find("plan_size")->integer;
    const std::int64_t candidates =
        wholeBody.find("candidates")->integer;
    ASSERT_GT(planSize, 1);

    // ...must equal the sum of two disjoint pieces.
    const std::uint64_t cut = static_cast<std::uint64_t>(planSize) / 2;
    server::HttpResponse lo =
        postShard(service, shardCheckRequest(source, "base", 0, cut));
    server::HttpResponse hi = postShard(
        service, shardCheckRequest(source, "base", cut, ~0ull));
    ASSERT_EQ(lo.status, 200);
    ASSERT_EQ(hi.status, 200);
    EXPECT_EQ(server::parseJson(openedShardPayload(lo))
                      .find("candidates")
                      ->integer +
                  server::parseJson(openedShardPayload(hi))
                      .find("candidates")
                      ->integer,
              candidates);
    EXPECT_EQ(metrics.shardRequests.load(), 3u);

    // A fingerprint from some other job identity is refused with 409 —
    // computing shards against the wrong plan would corrupt the merge.
    std::string drifted = shardCheckRequest(source, "base", 0, ~0ull);
    const std::size_t at = drifted.find("\"fingerprint\":\"") + 15;
    drifted[at] = drifted[at] == '0' ? '1' : '0';
    server::HttpResponse refused = postShard(service, drifted);
    EXPECT_EQ(refused.status, 409);
    EXPECT_EQ(metrics.shardRefused.load(), 1u);

    // Malformed bodies and unknown kinds are 400s; GET is a 405.
    EXPECT_EQ(postShard(service, "{not json").status, 400);
    EXPECT_EQ(postShard(service, "{\"kind\":\"mystery\"}").status, 400);
    server::HttpRequest get;
    get.method = "GET";
    get.path = "/shard";
    EXPECT_EQ(service.handle(get).status, 405);
}

// ---------------------------------------------------------------------
// The rex-shard-v1 integrity envelope
// ---------------------------------------------------------------------

TEST(ShardEnvelope, SealsAndOpensRoundTrip)
{
    const std::string payload =
        "{\"tested\":4,\"sound\":4,\"candidates\":99}";
    const std::string sealed = server::sealShardEnvelope(
        payload, "shard-check:base", engine::kModelRevision);
    ASSERT_FALSE(sealed.empty());
    EXPECT_EQ(sealed.back(), '\n');

    std::string opened;
    std::string error;
    ASSERT_TRUE(server::openShardEnvelope(sealed, "shard-check:base",
                                          engine::kModelRevision,
                                          opened, error))
        << error;
    EXPECT_EQ(opened, payload);

    // A pre-envelope (PR 9) bare payload is refused as foreign.
    EXPECT_FALSE(server::openShardEnvelope(payload + "\n", "",
                                           engine::kModelRevision,
                                           opened, error));
    EXPECT_NE(error.find("envelope"), std::string::npos);
}

TEST(ShardEnvelope, RejectsTamperedPayloadBytes)
{
    const std::string payload = "{\"candidates\":123}";
    std::string sealed = server::sealShardEnvelope(
        payload, "shard-check:base", engine::kModelRevision);
    const std::size_t at = sealed.find(":123}");
    ASSERT_NE(at, std::string::npos);
    sealed[at + 1] = '9';

    std::string opened;
    std::string error;
    EXPECT_FALSE(server::openShardEnvelope(sealed, "shard-check:base",
                                           engine::kModelRevision,
                                           opened, error));
    EXPECT_NE(error.find("digest mismatch"), std::string::npos);
    EXPECT_TRUE(opened.empty());
}

TEST(ShardEnvelope, RejectsForeignRevisionEvenWhenSelfConsistent)
{
    // A stale binary signs its stale revision consistently — the digest
    // verifies, the revision check still refuses it.
    const std::string payload = "{\"candidates\":7}";
    const std::string sealed = server::sealShardEnvelope(
        payload, "shard-check:base",
        std::string(engine::kModelRevision) + "-stale");

    std::string opened;
    std::string error;
    EXPECT_FALSE(server::openShardEnvelope(sealed, "shard-check:base",
                                           engine::kModelRevision,
                                           opened, error));
    EXPECT_NE(error.find("revision mismatch"), std::string::npos);
}

TEST(ShardEnvelope, RejectsAnswersForADifferentProgram)
{
    const std::string payload = "{\"candidates\":7}";
    const std::string sealed = server::sealShardEnvelope(
        payload, "shard-check:sc", engine::kModelRevision);

    std::string opened;
    std::string error;
    EXPECT_FALSE(server::openShardEnvelope(sealed, "shard-check:base",
                                           engine::kModelRevision,
                                           opened, error));
    EXPECT_NE(error.find("program mismatch"), std::string::npos);

    // An empty expectProgram (the trusted local path) skips the check.
    EXPECT_TRUE(server::openShardEnvelope(sealed, "",
                                          engine::kModelRevision,
                                          opened, error))
        << error;
    EXPECT_EQ(opened, payload);
}

/** A live peer rexd plus a coordinator rexd whose --peers points at
 *  it; both on ephemeral localhost ports, engines uncached. */
class PeerCluster : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _peerEngine = std::make_unique<engine::Engine>(plainConfig());
        server::ServerConfig peerConfig;
        peerConfig.threads = 2;
        _peer = std::make_unique<server::RexServer>(*_peerEngine,
                                                    peerConfig);
        _peer->start();

        _coordEngine = std::make_unique<engine::Engine>(plainConfig());
        _coord = std::make_unique<server::RexServer>(*_coordEngine,
                                                     coordConfig());
        _coord->start();
    }

    /** The default coordinator config, pointing at the live peer. */
    server::ServerConfig
    coordConfig() const
    {
        server::ServerConfig config;
        config.threads = 2;
        config.peers.endpoints = {
            format("127.0.0.1:%u", _peer->port())};
        config.peers.minShards = 1;
        config.peers.shardsPerTask = 4;
        config.peers.maxAttemptsPerPeer = 2;
        config.peers.backoffInitialMs = 5;
        return config;
    }

    /** Tear the coordinator down and rebuild it with @p tweak applied
     *  to the default config (for tests needing audit knobs). */
    template <typename Tweak>
    void
    restartCoordinator(Tweak tweak)
    {
        _coord->requestDrain();
        _coord->join();
        server::ServerConfig config = coordConfig();
        tweak(config);
        _coordEngine = std::make_unique<engine::Engine>(plainConfig());
        _coord = std::make_unique<server::RexServer>(*_coordEngine,
                                                     config);
        _coord->start();
    }

    void
    TearDown() override
    {
        _coord->requestDrain();
        _coord->join();
        _peer->requestDrain();
        _peer->join();
    }

    std::unique_ptr<engine::Engine> _peerEngine;
    std::unique_ptr<engine::Engine> _coordEngine;
    std::unique_ptr<server::RexServer> _peer;
    std::unique_ptr<server::RexServer> _coord;
};

TEST_F(PeerCluster, DispatchedVerdictsMatchSingleNodeByteForByte)
{
    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");

    server::Client direct("127.0.0.1", _peer->port());
    server::Client viaCoord("127.0.0.1", _coord->port());
    server::ClientResponse a = direct.check(source, {"base"});
    server::ClientResponse b = viaCoord.check(source, {"base"});
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    EXPECT_EQ(stabilise(trim(a.body)), stabilise(trim(b.body)));

    EXPECT_GT(metricValue(viaCoord.get("/metrics").body,
                          "rexd_peer_dispatch_total"),
              0.0);
    EXPECT_GT(metricValue(direct.get("/metrics").body,
                          "rexd_shard_requests_total"),
              0.0);
}

TEST_F(PeerCluster, InjectedPeerFaultsDegradeToLocalFallback)
{
    FaultGuard disarm;
    engine::faultInjector().configure("peer-send:1.0:11");

    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");
    server::Client viaCoord("127.0.0.1", _coord->port());
    server::ClientResponse r = viaCoord.check(source, {"base"});
    ASSERT_EQ(r.status, 200);

    // Every dispatch died before reaching the peer, so the verdict came
    // from local fallback — and is still the single-node answer.
    engine::Engine reference(plainConfig());
    engine::JobRecord expected = reference.verdictRecord(
        parseLitmus(source), ModelParams::byName("base"));
    server::JsonValue got = server::parseJson(trim(r.body));
    EXPECT_EQ(got.find("verdict")->string, expected.verdict);
    EXPECT_EQ(got.find("candidates")->integer,
              static_cast<std::int64_t>(expected.candidates));

    const std::string exposition = viaCoord.get("/metrics").body;
    EXPECT_GT(metricValue(exposition, "rexd_peer_failures_total"), 0.0);
    EXPECT_GT(metricValue(exposition,
                          "rexd_peer_local_fallback_total"),
              0.0);
    EXPECT_GT(engine::faultInjector().injected(
                  engine::FaultPoint::PeerSend),
              0u);
}

TEST_F(PeerCluster, DistributedHammerMatchesTheLocalCampaign)
{
    gen::HammerConfig config;
    config.seedBegin = 0;
    config.seedEnd = 96;
    config.chunk = 16;
    config.budget.maxCandidates = 2000;

    gen::Hammer hammer(config);
    engine::Engine local(plainConfig());
    gen::CampaignSummary expected = hammer.run(local);

    server::Metrics poolMetrics;
    server::PeerConfig peerConfig;
    peerConfig.endpoints = {format("127.0.0.1:%u", _peer->port())};
    server::PeerPool pool(peerConfig, &poolMetrics);
    engine::Engine coordinator(plainConfig());
    gen::CampaignSummary distributed =
        server::runDistributedHammer(hammer, coordinator, pool);

    EXPECT_EQ(distributed.render(), expected.render());
    EXPECT_GT(poolMetrics.peerDispatchTotal.load(), 0u);
    EXPECT_EQ(poolMetrics.peerLocalFallbackTotal.load(), 0u);
}

// ---------------------------------------------------------------------
// Byzantine peers: corrupt frames, lies, quarantine, reinstatement
// ---------------------------------------------------------------------

TEST_F(PeerCluster, CorruptedFramesAreNeverMergedAndFallBackLocally)
{
    FaultGuard disarm;
    engine::faultInjector().configure("peer-corrupt-frame:1.0:21");

    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");
    server::Client viaCoord("127.0.0.1", _coord->port());
    server::ClientResponse r = viaCoord.check(source, {"base"});
    ASSERT_EQ(r.status, 200);

    // Every frame failed the digest check, so nothing corrupted was
    // merged — the verdict is the local fallback's, i.e. the truth.
    engine::Engine reference(plainConfig());
    engine::JobRecord expected = reference.verdictRecord(
        parseLitmus(source), ModelParams::byName("base"));
    server::JsonValue got = server::parseJson(trim(r.body));
    EXPECT_EQ(got.find("verdict")->string, expected.verdict);
    EXPECT_EQ(got.find("candidates")->integer,
              static_cast<std::int64_t>(expected.candidates));

    const std::string exposition = viaCoord.get("/metrics").body;
    EXPECT_GT(metricValue(exposition,
                          "rexd_shard_digest_mismatches_total"),
              0.0);
    EXPECT_GT(engine::faultInjector().injected(
                  engine::FaultPoint::PeerCorruptFrame),
              0u);
}

TEST_F(PeerCluster, LyingPeerIsAuditedQuarantinedAndTheMergeStaysTrue)
{
    restartCoordinator([](server::ServerConfig &config) {
        config.peers.auditRate = 1.0;
        config.peers.auditSeed = 9;
        config.peers.lieQuarantineSeconds = 300;
    });

    FaultGuard disarm;
    engine::faultInjector().configure("peer-lie:1.0:33");

    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");
    server::Client viaCoord("127.0.0.1", _coord->port());
    server::ClientResponse r = viaCoord.check(source, {"base"});
    ASSERT_EQ(r.status, 200);

    // Lies pass the envelope check (self-consistently signed) but every
    // audit recomputes locally — and the coordinator cannot lie to
    // itself — so the merged verdict is still the single-node answer.
    engine::Engine reference(plainConfig());
    engine::JobRecord expected = reference.verdictRecord(
        parseLitmus(source), ModelParams::byName("base"));
    server::JsonValue got = server::parseJson(trim(r.body));
    EXPECT_EQ(got.find("verdict")->string, expected.verdict);
    EXPECT_EQ(got.find("candidates")->integer,
              static_cast<std::int64_t>(expected.candidates));

    const std::string exposition = viaCoord.get("/metrics").body;
    EXPECT_GT(metricValue(exposition, "rexd_peer_lies_total"), 0.0);
    EXPECT_GE(metricValue(exposition, "rexd_peers_quarantined"), 1.0);
    EXPECT_GT(engine::faultInjector().injected(
                  engine::FaultPoint::PeerLie),
              0u);
}

TEST_F(PeerCluster, QuarantinedLiarIsReinstatedAfterCleanProbes)
{
    restartCoordinator([](server::ServerConfig &config) {
        config.peers.auditRate = 1.0;
        config.peers.auditSeed = 9;
        config.peers.lieQuarantineSeconds = 1;
        config.peers.reinstateProbes = 1;
        // One task for the whole plan: exactly one lie, so quarantine
        // does not escalate past the 1-second first episode.
        config.peers.shardsPerTask = 1 << 20;
    });

    FaultGuard disarm;
    engine::faultInjector().configure("peer-lie:1.0:33");

    const std::string source =
        TestRegistry::instance().sourceText("IRIW+addrs");
    server::Client viaCoord("127.0.0.1", _coord->port());
    ASSERT_EQ(viaCoord.check(source, {"base"}).status, 200);
    EXPECT_GE(metricValue(viaCoord.get("/metrics").body,
                          "rexd_peers_quarantined"),
              1.0);

    // The lies stop, the quarantine lapses into probation, and one
    // clean audited probe reinstates the peer.
    engine::faultInjector().configure("");
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    ASSERT_EQ(viaCoord.check(source, {"ExS"}).status, 200);

    const std::string exposition = viaCoord.get("/metrics").body;
    EXPECT_EQ(metricValue(exposition, "rexd_peers_quarantined"), 0.0);
    EXPECT_GT(metricValue(exposition, "rexd_peer_lies_total"), 0.0);
}

} // namespace
} // namespace rex
