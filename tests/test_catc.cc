/**
 * @file
 * Tests for the catc subsystem: the cat-model compiler (compile.hh),
 * the constant-folding executor (exec.hh), the bytecode verifier
 * (bytecode.hh), and the compiled path's integration into the checker
 * and the verdict cache.
 *
 * The load-bearing properties:
 *  - compiled == interpreted == naive on every built-in litmus test
 *    under every paper variant (counts, verdicts, forbidding axiom and
 *    cycle), in both exhaustive and stop_at_first modes;
 *  - per candidate, the folded program's attributed run reproduces
 *    checkConsistent exactly, and its fast run agrees on the verdict;
 *  - the switch dispatch loop (REX_CATC_SWITCH=1) is observationally
 *    identical to the computed-goto one;
 *  - malformed bytecode is rejected by verify(), never executed;
 *  - the model-revision bump means interpreter-era cache entries are
 *    misses, not collisions.
 */

#include <cstdlib>
#include <random>

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "base/logging.hh"
#include "cat/catmodel.hh"
#include "cat/parser.hh"
#include "catc/bytecode.hh"
#include "catc/cache.hh"
#include "catc/compile.hh"
#include "catc/exec.hh"
#include "engine/cache.hh"
#include "engine/pool.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

/** RAII environment-variable override (restores on scope exit). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old)
            _old = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (_old)
            ::setenv(_name, _old->c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    std::optional<std::string> _old;
};

void
expectSameResult(const CheckResult &a, const CheckResult &b,
                 const std::string &context)
{
    EXPECT_EQ(a.observable, b.observable) << context;
    EXPECT_EQ(a.candidates, b.candidates) << context;
    EXPECT_EQ(a.consistent, b.consistent) << context;
    EXPECT_EQ(a.witnesses, b.witnesses) << context;
    EXPECT_EQ(a.forbiddingAxiom, b.forbiddingAxiom) << context;
    EXPECT_EQ(a.forbiddingCycle, b.forbiddingCycle) << context;
}

TEST(CatcParity, CompiledMatchesInterpretedAndNaiveEverywhere)
{
    // The tentpole cross-validation: compiled (default path) ==
    // staged interpreter (REX_COMPILED_MODEL=0) == naive reference,
    // on all built-in tests x paper variants, both modes.
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            std::string context = test->name + " / " + params.name();
            CheckResult compiled = checkTest(*test, params);
            CheckResult compiledFirst = checkTest(*test, params, true);
            CheckResult interpreted, interpretedFirst;
            {
                EnvGuard off("REX_COMPILED_MODEL", "0");
                interpreted = checkTest(*test, params);
                interpretedFirst = checkTest(*test, params, true);
            }
            expectSameResult(compiled, interpreted, context);
            expectSameResult(compiledFirst, interpretedFirst,
                             context + " (stop_at_first)");
            expectSameResult(compiled, checkTestNaive(*test, params),
                             context + " (naive)");
            expectSameResult(compiledFirst,
                             checkTestNaive(*test, params, true),
                             context + " (naive stop_at_first)");
        }
    }
}

TEST(CatcParity, SwitchDispatchMatchesComputedGoto)
{
    EnvGuard force("REX_CATC_SWITCH", "1");
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            CheckResult switched = checkTest(*test, params);
            CheckResult reference;
            {
                EnvGuard normal("REX_CATC_SWITCH", nullptr);
                reference = checkTest(*test, params);
            }
            expectSameResult(switched, reference,
                             test->name + " / " + params.name() +
                                 " (switch dispatch)");
        }
    }
}

TEST(CatcParity, ShardedCompiledMatchesSerial)
{
    engine::ThreadPool pool(4);
    for (const char *name :
         {"MP.EL1+dmb.sy+dataesrsvc", "SB+dmb.sy+eret",
          "MPviaSGI+dsb.st", "LB+ctrlint+data"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        for (const ModelParams &params : ModelParams::paperVariants()) {
            std::string context =
                test.name + " / " + params.name() + " (sharded)";
            expectSameResult(checkTest(test, params),
                             checkTest(test, params, false, true, &pool),
                             context);
            expectSameResult(
                checkTest(test, params, true, true),
                checkTest(test, params, true, true, &pool),
                context + " stop_at_first");
        }
    }
}

TEST(CatcExec, AttributedRunReproducesCheckConsistentPerCandidate)
{
    // Per-candidate ground truth: the folded native program (with the
    // internal check, since no pre-filter runs here) must reproduce
    // checkConsistent exactly — verdict, axiom name, and cycle.
    for (const char *name :
         {"MP.EL1+dmb.sy+dataesrsvc", "SB+dmb.sy+eret",
          "MP+dmb.sy+ctrlsvc", "MPviaSGI+dsb.st", "LB+ctrlint+data",
          "MP+dmb.sy+fault"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        for (const ModelParams &params : ModelParams::paperVariants()) {
            catc::Program program = catc::compileNative(params, true);
            CandidateEnumerator enumerator(test);
            enumerator.forEach([&](CandidateExecution &cand) {
                catc::FoldedProgram folded(program, cand);
                ModelResult expected = checkConsistent(cand, params);
                ModelResult attributed = folded.runAttributed(cand);
                EXPECT_EQ(attributed.consistent, expected.consistent);
                EXPECT_EQ(attributed.failedAxiom, expected.failedAxiom);
                EXPECT_EQ(attributed.cycle, expected.cycle);
                ModelResult fast = folded.runFast(cand);
                EXPECT_EQ(fast.consistent, expected.consistent);
                EXPECT_TRUE(fast.failedAxiom.empty());
                return true;
            });
        }
    }
}

TEST(CatcExec, FoldEliminatesSkeletonWork)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    catc::Program program =
        catc::compileNative(ModelParams::base(), false);
    EXPECT_FALSE(program.ops.empty());
    EXPECT_FALSE(program.checks.empty());
    CandidateEnumerator enumerator(test);
    bool checked = false;
    enumerator.forEach([&](CandidateExecution &cand) {
        catc::FoldedProgram folded(program, cand);
        // The witness tail must be a strict minority of the program:
        // the whole static skeleton folds away.
        EXPECT_GT(folded.liveOps(), 0u);
        EXPECT_LT(folded.liveOps(), program.ops.size() / 2);
        checked = true;
        return false;
    });
    EXPECT_TRUE(checked);
}

TEST(CatcExec, RefoldMatchesFreshFoldAcrossTests)
{
    // refold() must behave exactly like constructing a fresh
    // FoldedProgram, both when the static signature matches (MP's trace
    // combinations differ only in read values) and when it changes
    // completely (hopping to a different test's candidates).
    const ModelParams params = ModelParams::base();
    catc::Program program = catc::compileNative(params, false);
    std::optional<catc::FoldedProgram> reused;
    for (const char *name :
         {"MP.EL1+dmb.sy+dataesrsvc", "SB+dmb.sy+eret", "ATOM-fail",
          "MP.EL1+dmb.sy+dataesrsvc"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        CandidateEnumerator enumerator(test);
        enumerator.forEachStaged(
            [&](CandidateExecution &cand,
                const CandidateEnumerator::StagedInfo &info) {
                if (!info.coherent)
                    return true;
                if (!reused)
                    reused.emplace(program, cand);
                else
                    reused->refold(cand);
                catc::FoldedProgram fresh(program, cand);
                const ModelResult a = reused->runAttributed(cand);
                const ModelResult b = fresh.runAttributed(cand);
                EXPECT_EQ(a.consistent, b.consistent)
                    << name << ": refold diverged from a fresh fold";
                EXPECT_EQ(a.failedAxiom, b.failedAxiom) << name;
                EXPECT_EQ(a.cycle, b.cycle) << name;
                EXPECT_EQ(reused->runFast(cand).consistent, b.consistent)
                    << name;
                return true;
            });
    }
}

TEST(CatcVerifier, RejectsMalformedPrograms)
{
    using catc::Op;
    using catc::OpCode;

    // Operand register out of range (forward reference).
    catc::Program forward;
    forward.ops.push_back(
        {OpCode::LoadInput, static_cast<std::uint32_t>(catc::Input::Po),
         0, 0});
    forward.ops.push_back({OpCode::UnionRel, 0, 5, 0});
    EXPECT_NE(catc::verify(forward), "");

    // Input id out of range.
    catc::Program badInput;
    badInput.ops.push_back(
        {OpCode::LoadInput,
         static_cast<std::uint32_t>(catc::Input::Count_) + 7, 0, 0});
    EXPECT_NE(catc::verify(badInput), "");

    // Truncated program: a check naming a register that does not exist.
    catc::Program truncated;
    truncated.ops.push_back(
        {OpCode::LoadInput, static_cast<std::uint32_t>(catc::Input::Po),
         0, 0});
    truncated.checks.push_back(
        {catc::Check::Kind::Acyclic, 3, "dangling"});
    EXPECT_NE(catc::verify(truncated), "");

    // Kind confusion: an acyclicity check on a set register, and a
    // relation op fed a set operand.
    catc::Program setCycle;
    setCycle.ops.push_back(
        {OpCode::LoadInput, static_cast<std::uint32_t>(catc::Input::R),
         0, 0});
    setCycle.checks.push_back(
        {catc::Check::Kind::Acyclic, 0, "set-cycle"});
    EXPECT_NE(catc::verify(setCycle), "");

    catc::Program kindClash;
    kindClash.ops.push_back(
        {OpCode::LoadInput, static_cast<std::uint32_t>(catc::Input::R),
         0, 0});
    kindClash.ops.push_back({OpCode::Closure, 0, 0, 0});
    EXPECT_NE(catc::verify(kindClash), "");

    // The native program passes and fills kinds.
    catc::Program good = catc::compileNative(ModelParams::base(), true);
    EXPECT_EQ(good.kinds.size(), good.ops.size());
}

/** Interpreter-vs-compiled comparison for one cat source over every
 *  candidate of @p testName. */
void
expectCatParity(const std::string &source, const char *testName,
                const ModelParams &params)
{
    cat::CatModel model = cat::CatModel::fromSource(source,
                                                    cat::modelDir());
    catc::CatCompileResult compiled =
        catc::compileCat(model.file(), cat::flagsFor(params));
    ASSERT_TRUE(compiled.program.has_value()) << compiled.error;
    const LitmusTest &test = TestRegistry::instance().get(testName);
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        cat::EvalResult expected = model.evaluate(cand, params);
        catc::FoldedProgram folded(*compiled.program, cand);
        ModelResult actual = folded.runAttributed(cand);
        EXPECT_EQ(actual.consistent, expected.consistent);
        if (!expected.consistent) {
            const cat::CheckOutcome *first = nullptr;
            for (const cat::CheckOutcome &outcome : expected.checks) {
                if (!outcome.passed) {
                    first = &outcome;
                    break;
                }
            }
            EXPECT_NE(first, nullptr);
            if (first) {
                EXPECT_EQ(actual.failedAxiom, first->name);
                EXPECT_EQ(actual.cycle, first->cycle);
            }
        }
        return true;
    });
}

TEST(CatcCompiler, ShippedModelCompilesAndMatchesInterpreter)
{
    // The shipped aarch64-exceptions.cat (includes flattened at load)
    // must be inside the compilable subset and agree with the
    // interpreter check-for-check.
    const cat::CatModel &model = cat::CatModel::shipped();
    for (const char *name :
         {"MP.EL1+dmb.sy+dataesrsvc", "SB+dmb.sy+eret",
          "MP+dmb.sy+ctrlsvc"}) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            catc::CatCompileResult compiled =
                catc::compileCat(model.file(), cat::flagsFor(params));
            ASSERT_TRUE(compiled.program.has_value()) << compiled.error;
            const LitmusTest &test = TestRegistry::instance().get(name);
            CandidateEnumerator enumerator(test);
            enumerator.forEach([&](CandidateExecution &cand) {
                cat::EvalResult expected = model.evaluate(cand, params);
                catc::FoldedProgram folded(*compiled.program, cand);
                ModelResult actual = folded.runAttributed(cand);
                EXPECT_EQ(actual.consistent, expected.consistent)
                    << test.name << " / " << params.name();
                return true;
            });
        }
    }
}

TEST(CatcCompiler, ZeroPolymorphismMatchesEvaluator)
{
    // The evaluator's polymorphic zero rules, exercised through the
    // compiler: zero|rel, zero&set, zero in a sequence, empty-on-zero
    // (which the evaluator treats as an (empty) relation).
    const std::string source = R"("zeros"
let z = 0
let u = z | po
let zz = 0 | 0
let s = z & R
let q = z; po
empty zz as both-zero
empty s as zero-set
acyclic u as zero-union
acyclic q as zero-seq
acyclic po-loc | fr | co | rf as internal
)";
    expectCatParity(source, "SB+dmb.sy+eret", ModelParams::base());
}

TEST(CatcCompiler, ConstantChecksFoldAway)
{
    // A check over witness-independent registers must be resolved at
    // fold time (dead-code elimination), leaving no per-candidate work.
    const std::string source = R"("static"
let stat = po; [W] | addr | data
acyclic stat as static-check
acyclic po-loc | fr | co | rf as internal
)";
    cat::CatModel model =
        cat::CatModel::fromSource(source, cat::modelDir());
    catc::CatCompileResult compiled =
        catc::compileCat(model.file(), cat::flagsFor(ModelParams::base()));
    ASSERT_TRUE(compiled.program.has_value()) << compiled.error;
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        catc::FoldedProgram folded(*compiled.program, cand);
        EXPECT_EQ(folded.constChecks(), 1u);
        return false;
    });
    expectCatParity(source, "SB+dmb.sy+eret", ModelParams::base());
}

TEST(CatcCompiler, RejectsOutsideTheCompilableSubset)
{
    const ModelParams params = ModelParams::base();
    const auto flags = cat::flagsFor(params);

    catc::CatCompileResult rec = catc::compileCat(
        cat::parseCat("\"m\"\nlet rec x = po | x; po\nacyclic x as r\n"),
        flags);
    EXPECT_FALSE(rec.program.has_value());
    EXPECT_NE(rec.error.find("rec"), std::string::npos) << rec.error;

    catc::CatCompileResult flag = catc::compileCat(
        cat::parseCat("\"m\"\nflag ~empty po as diag\n"), flags);
    EXPECT_FALSE(flag.program.has_value());

    catc::CatCompileResult include = catc::compileCat(
        cat::parseCat("\"m\"\ninclude \"cos.cat\"\n"), flags);
    EXPECT_FALSE(include.program.has_value());
    EXPECT_NE(include.error.find("include"), std::string::npos)
        << include.error;
}

TEST(CatcRelation, HasCycleAgreesWithAcyclic)
{
    std::mt19937_64 rng(20250808);
    for (int round = 0; round < 400; ++round) {
        const std::size_t n = 1 + rng() % 80;
        Relation r(n);
        // Sweep densities across rounds: sparse relations are usually
        // acyclic, dense ones cyclic; both sides must agree.
        const std::uint64_t density = 1 + rng() % (2 * n);
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                if (rng() % (n * 2) < density)
                    r.add(a, b);
            }
        }
        EXPECT_EQ(r.hasCycle(), !r.acyclic()) << "n=" << n;
    }
    // Edge cases: empty, identity (self-loop), simple 2-cycle.
    Relation empty(8);
    EXPECT_FALSE(empty.hasCycle());
    Relation self(8);
    self.add(3, 3);
    EXPECT_TRUE(self.hasCycle());
    Relation pair(8);
    pair.add(1, 5);
    pair.add(5, 1);
    EXPECT_TRUE(pair.hasCycle());
    Relation chain(8);
    chain.add(0, 1);
    chain.add(1, 2);
    chain.add(2, 7);
    EXPECT_FALSE(chain.hasCycle());
}

TEST(CatcCache, ProgramIdEmbedsModelRevision)
{
    const std::string id = catc::programId(ModelParams::base());
    EXPECT_NE(id.find(engine::kModelRevision), std::string::npos) << id;
    EXPECT_NE(id.find("base"), std::string::npos) << id;
    // One program per variant, stable across calls.
    EXPECT_EQ(id, catc::programId(ModelParams::base()));
    EXPECT_NE(id, catc::programId(ModelParams::paperVariants().back()));
}

TEST(CatcCache, CompileOncePerVariant)
{
    const catc::CompileStats before = catc::compileStats();
    auto first = catc::nativeStaged(ModelParams::base());
    auto second = catc::nativeStaged(ModelParams::base());
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get());
    const catc::CompileStats after = catc::compileStats();
    EXPECT_GE(after.hits, before.hits + 1);
    EXPECT_EQ(first->id, catc::programId(ModelParams::base()));
}

TEST(CatcCache, EscapeHatchDisablesCompiledPath)
{
    EnvGuard off("REX_COMPILED_MODEL", "0");
    EXPECT_FALSE(catc::compiledModelEnabled());
    EXPECT_EQ(catc::programForCheck(ModelParams::base()), nullptr);
    {
        EnvGuard on("REX_COMPILED_MODEL", "1");
        EXPECT_TRUE(catc::compiledModelEnabled());
        EXPECT_NE(catc::programForCheck(ModelParams::base()), nullptr);
    }
    {
        // Any value other than exactly "0" leaves the path enabled.
        EnvGuard odd("REX_COMPILED_MODEL", "00");
        EXPECT_TRUE(catc::compiledModelEnabled());
    }
}

TEST(CatcCache, StaleRevisionVerdictEntryIsAMiss)
{
    // Satellite: the kModelRevision bump must make interpreter-era
    // verdict-cache entries (stored under the old revision) misses for
    // the compiled path, in memory and on disk.
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    const ModelParams params = ModelParams::base();
    constexpr const char *kOldRevision = "fig9-native-r1";
    ASSERT_STRNE(engine::kModelRevision, kOldRevision);

    const engine::VerdictKey oldKey =
        engine::VerdictKey::make(test, params, kOldRevision);
    const engine::VerdictKey newKey =
        engine::VerdictKey::make(test, params);
    EXPECT_NE(oldKey.text, newKey.text);
    EXPECT_NE(oldKey.hash, newKey.hash);

    char dirTemplate[] = "/tmp/rex-catc-cache-XXXXXX";
    ASSERT_NE(::mkdtemp(dirTemplate), nullptr);
    engine::CachedVerdict verdict;
    verdict.observable = true;
    verdict.candidates = 42;
    {
        engine::VerdictCache cache(true, dirTemplate);
        cache.store(oldKey, verdict);
    }
    {
        // A fresh cache over the same directory: the old-revision
        // entry is present on disk but must not satisfy a
        // current-revision lookup.
        engine::VerdictCache cache(true, dirTemplate);
        EXPECT_FALSE(cache.lookup(newKey).has_value());
        auto stale = cache.lookup(oldKey);
        ASSERT_TRUE(stale.has_value());
        EXPECT_EQ(stale->candidates, 42u);
    }
}

TEST(CatcProgram, DisassemblyIsStable)
{
    catc::Program program =
        catc::compileNative(ModelParams::base(), true);
    const std::string text = program.toString();
    EXPECT_NE(text.find("load rf"), std::string::npos);
    EXPECT_NE(text.find("acyclic"), std::string::npos);
    EXPECT_NE(text.find("external"), std::string::npos);
    EXPECT_NE(text.find("empty"), std::string::npos);
    // CSE/value numbering: no two ops may be textually identical.
    // (Disassembly lines are exactly the op table, one per line.)
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(start, end - start);
        // Strip the register name ("rN = ..." -> "..."): equal bodies
        // in different registers are the CSE violation.
        std::size_t eq = line.find(" = ");
        if (eq != std::string::npos)
            lines.push_back(line.substr(eq + 3));
        start = end + 1;
    }
    std::sort(lines.begin(), lines.end());
    EXPECT_EQ(std::adjacent_find(lines.begin(), lines.end()),
              lines.end())
        << "duplicate op bodies survived value numbering";
}

} // namespace
} // namespace rex
