/**
 * @file
 * Operational-simulator tests.
 *
 * The central property is *soundness*: every outcome the simulated
 * hardware can reach (exhaustive exploration) must be allowed by the
 * axiomatic model — the operational machine plays the role of the
 * paper's test devices, and hardware must be weaker than architecture.
 *
 * Additional tests pin the per-profile observability shape of the
 * paper's figures (e.g. MP+dmb.sy+svc is observable only on the
 * A73-like profile, §3.2.2) and basic machine behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "litmus/registry.hh"
#include "operational/explorer.hh"
#include "operational/runner.hh"

namespace rex {
namespace {

using op::CoreProfile;
using op::explore;
using op::ExploreResult;
using op::Runner;
using op::RunStats;

/** Outcome key of a candidate execution in the machine's format. */
std::string
axiomaticOutcomeKey(const LitmusTest &test, const CandidateExecution &cand)
{
    std::map<std::string, std::uint64_t> values;
    for (const CondAtom &atom : test.finalCond.atoms) {
        if (atom.kind != CondAtom::Kind::Register)
            continue;
        values[std::to_string(atom.tid) + ":" + isa::regName(atom.reg)] =
            cand.finalRegs[static_cast<std::size_t>(atom.tid)][atom.reg];
    }
    for (LocationId loc = 0; loc < test.locations.size(); ++loc)
        values["*" + test.locations[loc]] = cand.finalMemValue(loc);
    std::string out;
    for (const auto &[name, value] : values)
        out += name + "=" + std::to_string(value) + ";";
    return out;
}

/** All axiomatically-allowed outcome keys of a test. */
std::set<std::string>
allowedOutcomes(const LitmusTest &test, const ModelParams &params)
{
    std::set<std::string> keys;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        if (checkConsistent(cand, params).consistent)
            keys.insert(axiomaticOutcomeKey(test, cand));
        return true;
    });
    return keys;
}

// ---------------------------------------------------------------------
// Soundness: operational ⊆ axiomatic, per test, on the most relaxed
// profile (which subsumes the others' reorderings).
// ---------------------------------------------------------------------

class OperationalSoundness
    : public ::testing::TestWithParam<const LitmusTest *>
{};

TEST_P(OperationalSoundness, OutcomesAreAxiomaticallyAllowed)
{
    const LitmusTest &test = *GetParam();
    ExploreResult explored =
        explore(test, CoreProfile::maxRelaxed(), 400000);
    std::set<std::string> allowed =
        allowedOutcomes(test, ModelParams::base());
    for (const std::string &outcome : explored.outcomes) {
        EXPECT_TRUE(allowed.count(outcome))
            << test.name << ": operational outcome " << outcome
            << " is not axiomatically allowed";
    }
    EXPECT_FALSE(explored.outcomes.empty());
}

std::vector<const LitmusTest *>
soundnessTests()
{
    // Exhaustive exploration over every built-in test; the largest GIC
    // tests are capped by the state bound inside the fixture.
    return TestRegistry::instance().all();
}

std::string
soundnessName(const ::testing::TestParamInfo<const LitmusTest *> &info)
{
    std::string name = info.param->name;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllTests, OperationalSoundness,
                         ::testing::ValuesIn(soundnessTests()),
                         soundnessName);

// ---------------------------------------------------------------------
// Observability shape (the hw-refs columns of the figures).
// ---------------------------------------------------------------------

bool
observableOn(const std::string &test_name, const CoreProfile &profile)
{
    const LitmusTest &test = TestRegistry::instance().get(test_name);
    return explore(test, profile, 400000).conditionReachable;
}

TEST(HwShape, StoreBufferingAcrossEretObservedEverywhere)
{
    // Fig. 4: observed on all four devices.
    for (const CoreProfile &profile : CoreProfile::paperDevices())
        EXPECT_TRUE(observableOn("SB+dmb.sy+eret", profile))
            << profile.name;
}

TEST(HwShape, ForwardingIntoHandlerObservedEverywhere)
{
    // Fig. 6: observed on all four devices.
    for (const CoreProfile &profile : CoreProfile::paperDevices())
        EXPECT_TRUE(observableOn("SB+dmb.sy+rfisvc-addr", profile))
            << profile.name;
}

TEST(HwShape, LoadLoadReorderAcrossSvcOnlyOnA73)
{
    // §3.2.2: MP+dmb.sy+svc observed only on the ODROID's A73 cores.
    EXPECT_FALSE(observableOn("MP+dmb.sy+svc", CoreProfile::cortexA53()));
    EXPECT_FALSE(observableOn("MP+dmb.sy+svc", CoreProfile::cortexA72()));
    EXPECT_FALSE(observableOn("MP+dmb.sy+svc", CoreProfile::cortexA76()));
    EXPECT_TRUE(observableOn("MP+dmb.sy+svc", CoreProfile::cortexA73()));
}

TEST(HwShape, ForbiddenShapesNeverObserved)
{
    // The figures' forbidden tests: 0 observations on every device.
    for (const char *name : {"MP+dmb.sy+ctrlsvc", "MP+dmb.sy+ctrlelr",
                             "MP+dmb.sy+fault", "MP.EL1+dmb.sy+dataesrsvc",
                             "MPviaSGIEIOmode1sequence", "RCU-MP+dsb.st"}) {
        for (const CoreProfile &profile : CoreProfile::paperDevices())
            EXPECT_FALSE(observableOn(name, profile))
                << name << " on " << profile.name;
    }
}

TEST(HwShape, SequentialProfileSeesNoRelaxedOutcomes)
{
    for (const char *name : {"SB+pos", "MP+pos", "LB+pos"}) {
        EXPECT_FALSE(observableOn(name, CoreProfile::sequential()))
            << name;
    }
}

TEST(HwShape, MpViaSgiRace)
{
    // Fig. 12 allowed (no sync) vs forbidden with the DSB ST.
    EXPECT_TRUE(observableOn("MPviaSGI", CoreProfile::maxRelaxed()));
    EXPECT_FALSE(
        observableOn("MPviaSGI+dsb.st", CoreProfile::maxRelaxed()));
}

// ---------------------------------------------------------------------
// Completeness on classic shapes: the max-relaxed profile reaches every
// axiomatically-allowed outcome of the store-buffer/reorder shapes (it
// cannot speculate branches, so this only holds for speculation-free
// tests).
// ---------------------------------------------------------------------

TEST(OperationalCompleteness, ClassicShapesReachAllAllowedOutcomes)
{
    for (const char *name :
            {"SB+pos", "MP+pos", "LB+pos", "2+2W+pos", "SB+dmb.sys",
             "MP+dmb.sys", "SB+dmb.sy+eret", "WRC+pos"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        ExploreResult explored =
            explore(test, CoreProfile::maxRelaxed(), 400000);
        ASSERT_FALSE(explored.truncated) << name;
        std::set<std::string> allowed =
            allowedOutcomes(test, ModelParams::base());
        EXPECT_EQ(explored.outcomes, allowed) << name;
    }
}

// ---------------------------------------------------------------------
// Randomised runner.
// ---------------------------------------------------------------------

TEST(RunnerTest, DeterministicGivenSeed)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    Runner r1(CoreProfile::cortexA72(), 7);
    Runner r2(CoreProfile::cortexA72(), 7);
    RunStats s1 = r1.run(test, 500);
    RunStats s2 = r2.run(test, 500);
    EXPECT_EQ(s1.observed, s2.observed);
    EXPECT_EQ(s1.histogram, s2.histogram);
}

TEST(RunnerTest, ObservesStoreBuffering)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    Runner runner(CoreProfile::cortexA53(), 1);
    RunStats stats = runner.run(test, 2000);
    EXPECT_GT(stats.observed, 0u);
    EXPECT_LT(stats.observed, stats.runs);
}

TEST(RunnerTest, NeverObservesForbidden)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP+dmb.sys");
    Runner runner(CoreProfile::maxRelaxed(), 3);
    RunStats stats = runner.run(test, 2000);
    EXPECT_EQ(stats.observed, 0u);
}

} // namespace
} // namespace rex
