/**
 * @file
 * Unit tests for the axiomatic engine: parameter variants, candidate
 * enumeration (rf/co/interrupt witnesses, value-domain fixpoint), the
 * model's derived relations on known candidates, and checker details
 * (witness and cycle reporting).
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "base/logging.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

TEST(Params, VariantNamesRoundTrip)
{
    for (const char *name : {"base", "ExS", "SEA_R", "SEA_W", "SEA_RW",
                             "ExS_EIS0", "ExS_EOS0", "noETS2"}) {
        EXPECT_EQ(ModelParams::byName(name).name(), name);
    }
    EXPECT_THROW(ModelParams::byName("nope"), FatalError);
}

TEST(Params, CseGates)
{
    EXPECT_TRUE(ModelParams::base().entryIsCse());
    EXPECT_TRUE(ModelParams::base().returnIsCse());
    EXPECT_FALSE(ModelParams::exs().entryIsCse());
    EXPECT_FALSE(ModelParams::exs().returnIsCse());
    EXPECT_FALSE(ModelParams::byName("ExS_EIS0").entryIsCse());
    EXPECT_TRUE(ModelParams::byName("ExS_EIS0").returnIsCse());
}

TEST(Enumeration, SbHasExactCandidateCount)
{
    // SB+pos: each thread = 1 store + 1 load. Loads fork over {0,1};
    // rf choice is forced by the value; one write per location so co is
    // unique. 2 traces/thread -> 4 candidates.
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    CandidateEnumerator enumerator(test);
    EXPECT_EQ(enumerator.count(), 4u);
}

TEST(Enumeration, ValueDomainFixpointPicksUpStores)
{
    const LitmusTest &test = TestRegistry::instance().get("MP+pos");
    CandidateEnumerator enumerator(test);
    const auto &domain = enumerator.domain();
    ASSERT_EQ(domain.locValues.size(), 2u);
    EXPECT_EQ(domain.locValues[0], (std::vector<std::uint64_t>{0, 1}));
    EXPECT_EQ(domain.locValues[1], (std::vector<std::uint64_t>{0, 1}));
}

TEST(Enumeration, CoEnumeratesPermutations)
{
    // Two writes to x from different threads: co has 2 orders; the
    // final memory value distinguishes them.
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 0:X1=x; 1:X1=x; 0:X0=1; 1:X0=2\n"
        "thread 0:\n"
        "    STR X0,[X1]\n"
        "thread 1:\n"
        "    STR X0,[X1]\n"
        "allowed: *x=1\n");
    CandidateEnumerator enumerator(test);
    std::set<std::uint64_t> finals;
    enumerator.forEach([&](CandidateExecution &cand) {
        finals.insert(cand.finalMemValue(0));
        return true;
    });
    EXPECT_EQ(finals, (std::set<std::uint64_t>{1, 2}));
}

TEST(Enumeration, InterruptWitnessRequiresMatchingGenerate)
{
    // A thread that takes an SGI but whose test generates none for it
    // yields only the not-taken executions.
    LitmusTest test = parseLitmus(
        "name: t\n"
        "init: *x=0; 1:X1=x; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MOV X2,#2\n"          // INTID bits zero, target list empty
        "    MSR ICC_SGI1R_EL1,X2\n"
        "thread 1:\n"
        "    NOP\n"
        "handler 1:\n"
        "    MOV X3,#1\n"
        "    ERET\n"
        "allowed: 1:X3=1\n");
    CheckResult result = checkTest(test, ModelParams::base());
    // Target list 0b10 targets thread 1... bit 1 => thread 1. Adjust:
    // value 2 = target list {1}: the witness exists, so it IS takeable.
    EXPECT_TRUE(result.observable);

    // Now send to thread 0 only (which has no handler): thread 1 can
    // never take it.
    LitmusTest test2 = parseLitmus(
        "name: t2\n"
        "init: *x=0; 1:X1=x; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MOV X2,#1\n"          // target list {0} = the sender itself
        "    MSR ICC_SGI1R_EL1,X2\n"
        "thread 1:\n"
        "    NOP\n"
        "handler 1:\n"
        "    MOV X3,#1\n"
        "    ERET\n"
        "allowed: 1:X3=1\n");
    CheckResult result2 = checkTest(test2, ModelParams::base());
    EXPECT_FALSE(result2.observable);
}

TEST(Model, RelationsOnMpWithBarrier)
{
    const LitmusTest &test = TestRegistry::instance().get("MP+dmb.sys");
    CandidateEnumerator enumerator(test);
    bool found = false;
    enumerator.forEach([&](CandidateExecution &cand) {
        // Find the candidate with the forbidden reads (1, 0).
        if (!condHolds(cand, test.finalCond))
            return true;
        found = true;
        ModelRelations rels =
            computeRelations(cand, ModelParams::base());
        // bob must order both barrier sides: W x -> DMB -> W y and
        // R y -> DMB -> R x.
        EXPECT_GT(rels.bob.pairCount(), 0u);
        EXPECT_FALSE(rels.ob.irreflexive());
        return false;
    });
    EXPECT_TRUE(found);
}

TEST(Model, SpeculativeGrowsUnderSeaVariants)
{
    const LitmusTest &test = TestRegistry::instance().get("LB+pos");
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        ModelRelations base =
            computeRelations(cand, ModelParams::base());
        ModelRelations sea_r =
            computeRelations(cand, ModelParams::seaReads());
        // [R]; po adds pairs beyond ctrl | addr; po.
        EXPECT_GT(sea_r.speculative.pairCount(),
                  base.speculative.pairCount());
        return false;
    });
}

TEST(Model, CseSetRespectsExS)
{
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        ModelRelations base =
            computeRelations(cand, ModelParams::base());
        ModelRelations exs = computeRelations(cand, ModelParams::exs());
        EXPECT_EQ(base.cse.count(),
                  cand.takeExceptions().count() + cand.erets().count() +
                      cand.isb().count() + cand.takeInterrupts().count());
        EXPECT_EQ(exs.cse.count(), cand.isb().count());
        return false;
    });
}

TEST(Checker, ConstrainedUnpredictableCounted)
{
    LitmusTest test = parseLitmus(
        "name: cu\n"
        "init: *x=0; 0:X1=x; 0:X2=4096; 0:PSTATE.EL=1\n"
        "thread 0:\n"
        "    MSR VBAR_EL1,X2\n"
        "    SVC #0\n"
        "handler 0:\n"
        "    MOV X5,#1\n"
        "allowed: 0:X5=1\n");
    CheckResult result = checkTest(test, ModelParams::base());
    EXPECT_GT(result.constrainedUnpredictable, 0u);

    const LitmusTest &clean =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    EXPECT_EQ(checkTest(clean, ModelParams::base())
                  .constrainedUnpredictable, 0u);
}

TEST(Checker, WitnessReportedForAllowed)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    CheckResult result = checkTest(test, ModelParams::base());
    EXPECT_TRUE(result.observable);
    ASSERT_TRUE(result.witness.has_value());
    EXPECT_TRUE(condHolds(*result.witness, test.finalCond));
    EXPECT_GT(result.candidates, 0u);
    EXPECT_GT(result.consistent, 0u);
    EXPECT_GT(result.witnesses, 0u);
}

TEST(Checker, ForbiddenHasNoWitnessButConsistentCandidates)
{
    const LitmusTest &test = TestRegistry::instance().get("MP+dmb.sys");
    CheckResult result = checkTest(test, ModelParams::base());
    EXPECT_FALSE(result.observable);
    EXPECT_FALSE(result.witness.has_value());
    EXPECT_EQ(result.witnesses, 0u);
    EXPECT_GT(result.consistent, 0u);
}

TEST(Checker, CycleReportedOnExternalViolation)
{
    const LitmusTest &test = TestRegistry::instance().get("MP+dmb.sys");
    CandidateEnumerator enumerator(test);
    bool saw_external = false;
    enumerator.forEach([&](CandidateExecution &cand) {
        if (!condHolds(cand, test.finalCond))
            return true;
        ModelResult model = checkConsistent(cand, ModelParams::base());
        if (model.failedAxiom == "external") {
            saw_external = true;
            EXPECT_TRUE(model.cycle.has_value());
            if (model.cycle) {
                EXPECT_GE(model.cycle->size(), 2u);
            }
        }
        return true;
    });
    EXPECT_TRUE(saw_external);
}

TEST(Checker, InternalAxiomCatchesCoherenceViolations)
{
    const LitmusTest &test = TestRegistry::instance().get("CoRR");
    CandidateEnumerator enumerator(test);
    bool saw_internal = false;
    enumerator.forEach([&](CandidateExecution &cand) {
        if (!condHolds(cand, test.finalCond))
            return true;
        ModelResult model = checkConsistent(cand, ModelParams::base());
        EXPECT_FALSE(model.consistent);
        if (model.failedAxiom == "internal")
            saw_internal = true;
        return true;
    });
    EXPECT_TRUE(saw_internal);
}

TEST(Checker, AtomicAxiomFiresOnBothSucceeding)
{
    const LitmusTest &test = TestRegistry::instance().get("ATOM-2+2");
    CandidateEnumerator enumerator(test);
    bool saw_atomic = false;
    enumerator.forEach([&](CandidateExecution &cand) {
        if (!condHolds(cand, test.finalCond))
            return true;
        ModelResult model = checkConsistent(cand, ModelParams::base());
        if (model.failedAxiom == "atomic")
            saw_atomic = true;
        return true;
    });
    EXPECT_TRUE(saw_atomic);
}

// ---------------------------------------------------------------------
// Monotonicity properties: SEA variants only *add* ordering edges, so a
// candidate consistent under a SEA variant is consistent under base;
// disabling context synchronisation (ExS) only removes edges, so a
// candidate consistent under base is consistent under ExS. Swept over
// every test in the library.
// ---------------------------------------------------------------------

class ModelMonotonicity
    : public ::testing::TestWithParam<const LitmusTest *>
{};

TEST_P(ModelMonotonicity, SeaStrengthensAndExSWeakens)
{
    const LitmusTest &test = *GetParam();
    CandidateEnumerator enumerator(test);
    std::size_t checked = 0;
    enumerator.forEach([&](CandidateExecution &cand) {
        bool base = checkConsistent(cand, ModelParams::base()).consistent;
        bool sea_r =
            checkConsistent(cand, ModelParams::seaReads()).consistent;
        bool sea_w =
            checkConsistent(cand, ModelParams::seaWrites()).consistent;
        bool sea_rw =
            checkConsistent(cand, ModelParams::seaBoth()).consistent;
        bool exs = checkConsistent(cand, ModelParams::exs()).consistent;

        // SEA_RW ⊆ SEA_R ⊆ base, SEA_RW ⊆ SEA_W ⊆ base, base ⊆ ExS.
        EXPECT_LE(sea_r, base);
        EXPECT_LE(sea_w, base);
        EXPECT_LE(sea_rw, sea_r);
        EXPECT_LE(sea_rw, sea_w);
        EXPECT_LE(base, exs);
        return ++checked < 1500;
    });
    EXPECT_GT(checked, 0u);
}

std::string
monotonicityName(const ::testing::TestParamInfo<const LitmusTest *> &info)
{
    std::string name = info.param->name;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTests, ModelMonotonicity,
    ::testing::ValuesIn(TestRegistry::instance().all()),
    monotonicityName);

TEST(Checker, StopAtFirstAgreesOnVerdict)
{
    for (const char *name : {"SB+pos", "MP+dmb.sys", "SB+dmb.sy+eret",
                             "MP+dmb.sy+ctrlsvc"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        EXPECT_EQ(checkTest(test, ModelParams::base(), true).observable,
                  checkTest(test, ModelParams::base(), false).observable)
            << name;
    }
}

} // namespace
} // namespace rex
