/**
 * @file
 * Parity tests for the staged candidate-enumeration fast path: the
 * staged checker (skeleton reuse + coherence pre-filter +
 * mutate-and-undo odometer) must be observationally identical to the
 * retained naive reference path (fresh candidate copy per witness
 * assignment, full model check per candidate) on every built-in litmus
 * test under every paper model variant — same counts, same verdict,
 * same forbidding explanation — and the sharded parallel path must be
 * byte-identical to the serial one.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "base/logging.hh"
#include "engine/pool.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

/** Every field of the two results that the staged path promises to
 *  preserve (the witness itself is compared where captured). */
void
expectSameResult(const CheckResult &a, const CheckResult &b,
                 const std::string &context)
{
    EXPECT_EQ(a.observable, b.observable) << context;
    EXPECT_EQ(a.candidates, b.candidates) << context;
    EXPECT_EQ(a.consistent, b.consistent) << context;
    EXPECT_EQ(a.witnesses, b.witnesses) << context;
    EXPECT_EQ(a.constrainedUnpredictable, b.constrainedUnpredictable)
        << context;
    EXPECT_EQ(a.unknownSideEffects, b.unknownSideEffects) << context;
    EXPECT_EQ(a.forbiddingAxiom, b.forbiddingAxiom) << context;
    EXPECT_EQ(a.forbiddingCycle, b.forbiddingCycle) << context;
    EXPECT_EQ(a.witness.has_value(), b.witness.has_value()) << context;
    if (a.witness && b.witness) {
        EXPECT_EQ(a.witness->rf, b.witness->rf) << context;
        EXPECT_EQ(a.witness->co, b.witness->co) << context;
        EXPECT_EQ(a.witness->interruptWitness, b.witness->interruptWitness)
            << context;
    }
}

TEST(StagedParity, AllBuiltinTestsAllVariants)
{
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            std::string context = test->name + " / " + params.name();
            expectSameResult(checkTest(*test, params),
                             checkTestNaive(*test, params), context);
            // Verdict-only mode stops at different candidates, so it is
            // a distinct code path: compare it too.
            expectSameResult(
                checkTest(*test, params, true, false),
                checkTestNaive(*test, params, true, false),
                context + " (stop_at_first)");
        }
    }
}

TEST(StagedParity, EnvNaiveEnumMatchesStaged)
{
    // REX_NAIVE_ENUM=1 must route checkTest through the reference path
    // with identical results.
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    CheckResult staged = checkTest(test, ModelParams::base());
    ASSERT_EQ(setenv("REX_NAIVE_ENUM", "1", 1), 0);
    CheckResult naive = checkTest(test, ModelParams::base());
    ASSERT_EQ(unsetenv("REX_NAIVE_ENUM"), 0);
    expectSameResult(staged, naive, "REX_NAIVE_ENUM");
}

TEST(StagedParity, PrefilterAgreesWithFullInternalCheck)
{
    // REX_PREFILTER_CHECK=1 makes the enumerator panic if the cheap
    // per-location coherence pre-filter ever disagrees with the full
    // SC-per-location cycle check; sweeping every built-in test under
    // it is the strongest soundness exercise we have.
    ASSERT_EQ(setenv("REX_PREFILTER_CHECK", "1", 1), 0);
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        CandidateEnumerator enumerator(*test);
        std::size_t n = 0;
        enumerator.forEachStaged(
            [&](CandidateExecution &,
                const CandidateEnumerator::StagedInfo &) {
                ++n;
                return true;
            });
        EXPECT_EQ(n, enumerator.count()) << test->name;
    }
    ASSERT_EQ(unsetenv("REX_PREFILTER_CHECK"), 0);
}

TEST(StagedParity, ShardedMatchesSerial)
{
    engine::ThreadPool pool(4);
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            std::string context = test->name + " / " + params.name();
            expectSameResult(checkTest(*test, params),
                             checkTest(*test, params, false, true, &pool),
                             context + " (sharded)");
            expectSameResult(
                checkTest(*test, params, true, true),
                checkTest(*test, params, true, true, &pool),
                context + " (sharded stop_at_first)");
        }
    }
}

TEST(StagedParity, PermutationGuardFires)
{
    // Nine same-location stores would need 9! coherence orders per
    // combination: the enumerator must refuse with a diagnostic naming
    // the test instead of silently exploding.
    std::string text = "name: nine-writes\ninit: *x=0";
    std::string threads;
    for (int i = 0; i < 9; ++i) {
        text += "; " + std::to_string(i) + ":X1=x; " + std::to_string(i) +
                ":X0=" + std::to_string(i + 1);
        threads += "thread " + std::to_string(i) + ":\n    STR X0,[X1]\n";
    }
    text += "\n" + threads + "allowed: *x=1\n";
    LitmusTest test = parseLitmus(text);
    CandidateEnumerator enumerator(test);
    EXPECT_THROW(
        enumerator.forEach([](CandidateExecution &) { return true; }),
        FatalError);
}

} // namespace
} // namespace rex
