/**
 * @file
 * Unit tests for the ISA substrate: register/sysreg parsing, the lexer,
 * the assembler (including every addressing mode and the paper's exact
 * instruction sequences), and disassembly round-trips.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "isa/assembler.hh"
#include "isa/lexer.hh"

namespace rex::isa {
namespace {

TEST(Registers, ParseAndName)
{
    EXPECT_EQ(parseReg("X0"), RegId{0});
    EXPECT_EQ(parseReg("x30"), RegId{30});
    EXPECT_EQ(parseReg("W3"), RegId{3});
    EXPECT_EQ(parseReg("XZR"), kZeroReg);
    EXPECT_EQ(parseReg("WZR"), kZeroReg);
    EXPECT_FALSE(parseReg("X31").has_value());
    EXPECT_FALSE(parseReg("Y2").has_value());
    EXPECT_FALSE(parseReg("X").has_value());
    EXPECT_EQ(regName(5), "X5");
    EXPECT_EQ(regName(kZeroReg), "XZR");
}

TEST(Sysregs, ParseShorthandsAndFullNames)
{
    EXPECT_EQ(parseSysreg("ESR_EL1"), Sysreg::ESR_EL1);
    EXPECT_EQ(parseSysreg("elr_el1"), Sysreg::ELR_EL1);
    EXPECT_EQ(parseSysreg("IAR"), Sysreg::ICC_IAR1_EL1);
    EXPECT_EQ(parseSysreg("EOIR"), Sysreg::ICC_EOIR1_EL1);
    EXPECT_EQ(parseSysreg("DIR"), Sysreg::ICC_DIR_EL1);
    EXPECT_EQ(parseSysreg("ICC_SGI1R_EL1"), Sysreg::ICC_SGI1R_EL1);
    EXPECT_FALSE(parseSysreg("NOPE_EL1").has_value());
}

TEST(Sysregs, Classification)
{
    EXPECT_TRUE(isSelfSynchronising(Sysreg::ELR_EL1));
    EXPECT_TRUE(isSelfSynchronising(Sysreg::SPSR_EL1));
    EXPECT_FALSE(isSelfSynchronising(Sysreg::ESR_EL1));
    EXPECT_TRUE(isGicRegister(Sysreg::ICC_IAR1_EL1));
    EXPECT_FALSE(isGicRegister(Sysreg::TPIDR_EL1));
}

TEST(Lexer, SplitsStatementsAndLabels)
{
    auto statements = splitStatements(
        "MOV X0,#1\nSTR X0,[X1] // store\nL: NOP; ISB\n");
    ASSERT_EQ(statements.size(), 5u);
    EXPECT_EQ(statements[2], "L:");
    EXPECT_EQ(statements[3], "NOP");
    EXPECT_EQ(statements[4], "ISB");
}

TEST(Lexer, TokenizesImmediates)
{
    auto tokens = tokenizeStatement("MOV X2, #0xf");
    ASSERT_GE(tokens.size(), 4u);
    EXPECT_EQ(tokens[3].kind, TokenKind::Immediate);
    EXPECT_EQ(tokens[3].value, 15);
    EXPECT_THROW(tokenizeStatement("MOV X2, #zz"), FatalError);
    EXPECT_THROW(tokenizeStatement("MOV X2, $1"), FatalError);
}

TEST(Assembler, BasicMoves)
{
    Instruction mov = assembleStatement("MOV X3,#5");
    EXPECT_EQ(mov.op, Opcode::MovImm);
    EXPECT_EQ(mov.rd, 3);
    EXPECT_EQ(mov.imm, 5);

    Instruction shifted = assembleStatement("MOV X2, #1, LSL #40");
    EXPECT_EQ(shifted.shift, 40);

    Instruction movr = assembleStatement("MOV X1, X2");
    EXPECT_EQ(movr.op, Opcode::MovReg);
    EXPECT_EQ(movr.rn, 2);
}

TEST(Assembler, AddressingModes)
{
    EXPECT_EQ(assembleStatement("LDR X0,[X1]").mode, AddrMode::BaseOnly);
    EXPECT_EQ(assembleStatement("LDR X0,[X1,X2]").mode, AddrMode::BaseReg);
    EXPECT_EQ(assembleStatement("LDR X0,[X1,#8]").mode, AddrMode::BaseImm);
    Instruction post = assembleStatement("LDR X0,[X1],#8");
    EXPECT_EQ(post.mode, AddrMode::PostIndex);
    EXPECT_EQ(post.imm, 8);
    Instruction pre = assembleStatement("STR X0,[X1,#16]!");
    EXPECT_EQ(pre.mode, AddrMode::PreIndex);
    EXPECT_EQ(pre.imm, 16);
}

TEST(Assembler, AcquireReleaseExclusive)
{
    EXPECT_EQ(assembleStatement("LDAR X0,[X1]").op, Opcode::Ldar);
    EXPECT_EQ(assembleStatement("LDAPR X0,[X1]").op, Opcode::Ldapr);
    EXPECT_EQ(assembleStatement("STLR X0,[X1]").op, Opcode::Stlr);
    EXPECT_EQ(assembleStatement("LDXR X0,[X1]").op, Opcode::Ldxr);
    Instruction stxr = assembleStatement("STXR W3,X2,[X1]");
    EXPECT_EQ(stxr.op, Opcode::Stxr);
    EXPECT_EQ(stxr.rs, 3);
    EXPECT_EQ(stxr.rd, 2);
    EXPECT_EQ(stxr.rn, 1);
}

TEST(Assembler, Barriers)
{
    EXPECT_EQ(assembleStatement("DMB SY").barrier, BarrierKind::DmbSy);
    EXPECT_EQ(assembleStatement("DMB LD").barrier, BarrierKind::DmbLd);
    EXPECT_EQ(assembleStatement("DMB ST").barrier, BarrierKind::DmbSt);
    EXPECT_EQ(assembleStatement("DSB SY").barrier, BarrierKind::DsbSy);
    EXPECT_EQ(assembleStatement("DSB ST").barrier, BarrierKind::DsbSt);
    EXPECT_EQ(assembleStatement("DMB ISH").barrier, BarrierKind::DmbSy);
    EXPECT_EQ(assembleStatement("DMB ISHST").barrier, BarrierKind::DmbSt);
    EXPECT_EQ(assembleStatement("ISB").op, Opcode::Isb);
    EXPECT_THROW(assembleStatement("DMB XX"), FatalError);
}

TEST(Assembler, AluOps)
{
    Instruction eor = assembleStatement("EOR X6,X2,X2");
    EXPECT_EQ(eor.op, Opcode::Alu);
    EXPECT_EQ(eor.alu, AluOp::Eor);
    Instruction add = assembleStatement("ADD X5,X4,#1");
    EXPECT_TRUE(add.aluImmediate);
    EXPECT_EQ(add.imm, 1);
    Instruction andi = assembleStatement("AND X3,X3,#0xFFFFFF");
    EXPECT_EQ(andi.alu, AluOp::And);
    EXPECT_EQ(andi.imm, 0xFFFFFF);
}

TEST(Assembler, ExceptionsAndSysregs)
{
    EXPECT_EQ(assembleStatement("SVC #0").op, Opcode::Svc);
    EXPECT_EQ(assembleStatement("ERET").op, Opcode::Eret);
    Instruction mrs = assembleStatement("MRS X4,ESR_EL1");
    EXPECT_EQ(mrs.op, Opcode::Mrs);
    EXPECT_EQ(mrs.sysreg, Sysreg::ESR_EL1);
    Instruction msr = assembleStatement("MSR ELR_EL1,X5");
    EXPECT_EQ(msr.op, Opcode::Msr);
    EXPECT_EQ(msr.rn, 5);
    Instruction daif = assembleStatement("MSR DAIFSet, #0xf");
    EXPECT_EQ(daif.op, Opcode::MsrDaifSet);
    EXPECT_EQ(daif.imm, 0xf);
    EXPECT_EQ(assembleStatement("MSR DAIFClr, #0xf").op,
              Opcode::MsrDaifClr);
}

TEST(Assembler, CmpAndConditionalBranch)
{
    Instruction cmp = assembleStatement("CMP X0,#1");
    EXPECT_EQ(cmp.op, Opcode::Cmp);
    EXPECT_TRUE(cmp.aluImmediate);
    EXPECT_EQ(cmp.imm, 1);
    Instruction cmpr = assembleStatement("CMP X0,X2");
    EXPECT_FALSE(cmpr.aluImmediate);
    EXPECT_EQ(cmpr.rm, 2);

    Instruction beq = assembleStatement("B.EQ somewhere");
    EXPECT_EQ(beq.op, Opcode::BCond);
    EXPECT_EQ(beq.cond, CondCode::Eq);
    EXPECT_EQ(beq.label, "somewhere");
    EXPECT_EQ(assembleStatement("B.NE L").cond, CondCode::Ne);
    EXPECT_EQ(assembleStatement("B.GE L").cond, CondCode::Ge);
    EXPECT_EQ(assembleStatement("B.LT L").cond, CondCode::Lt);
    EXPECT_THROW(assembleStatement("B.XX L"), FatalError);
}

TEST(Conditions, Semantics)
{
    EXPECT_TRUE(condHoldsFor(CondCode::Eq, 3, 3));
    EXPECT_FALSE(condHoldsFor(CondCode::Eq, 3, 4));
    EXPECT_TRUE(condHoldsFor(CondCode::Ne, 3, 4));
    EXPECT_TRUE(condHoldsFor(CondCode::Ge, 3, 3));
    EXPECT_TRUE(condHoldsFor(CondCode::Gt, 4, 3));
    EXPECT_TRUE(condHoldsFor(CondCode::Le, -5, 3));
    EXPECT_TRUE(condHoldsFor(CondCode::Lt, -5, 3));
    EXPECT_FALSE(condHoldsFor(CondCode::Lt, 3, 3));
}

TEST(Assembler, PairAccessesExpand)
{
    // LDP/STP expand into their two single-copy-atomic element
    // accesses, one cell (0x1000) apart.
    Program prog = assemble("STP X2,X3,[X1]\nLDP X4,X5,[X1]\n");
    ASSERT_EQ(prog.code.size(), 4u);
    EXPECT_EQ(prog.code[0].op, Opcode::Str);
    EXPECT_EQ(prog.code[0].rd, 2);
    EXPECT_FALSE(prog.code[0].pairSecond);
    EXPECT_EQ(prog.code[1].op, Opcode::Str);
    EXPECT_EQ(prog.code[1].rd, 3);
    EXPECT_EQ(prog.code[1].imm, 0x1000);
    EXPECT_TRUE(prog.code[1].pairSecond);
    EXPECT_EQ(prog.code[2].op, Opcode::Ldr);
    EXPECT_EQ(prog.code[3].mode, AddrMode::BaseImm);

    // Base-overlapping LDP is rejected.
    EXPECT_THROW(assemble("LDP X1,X2,[X1]"), FatalError);
    // Pairs only support base / base+imm addressing.
    EXPECT_THROW(assembleStatement("LDP X1,X2,[X3],#8"), FatalError);
}

TEST(Assembler, BranchesAndLabels)
{
    Program prog = assemble(
        "LDR X0,[X1]\n"
        "CBNZ X0,LC00\n"
        "LC00:\n"
        "SVC #0\n");
    ASSERT_EQ(prog.code.size(), 3u);
    EXPECT_EQ(prog.labelIndex("LC00"), 2u);
    EXPECT_EQ(prog.code[1].op, Opcode::Cbnz);
    EXPECT_EQ(prog.code[1].label, "LC00");
}

TEST(Assembler, TrailingLabel)
{
    Program prog = assemble("NOP\nEND:\n");
    EXPECT_EQ(prog.labelIndex("END"), 1u);
}

TEST(Assembler, UndefinedBranchTargetFails)
{
    EXPECT_THROW(assemble("CBZ X0,NOWHERE"), FatalError);
    EXPECT_THROW(assemble("L:\nL:\nNOP"), FatalError);  // duplicate label
}

TEST(Assembler, RejectsUnknownMnemonic)
{
    EXPECT_THROW(assembleStatement("FROB X1,X2"), FatalError);
    EXPECT_THROW(assembleStatement("LDR X0 [X1]"), FatalError);
    EXPECT_THROW(assembleStatement("MRS X0,NOT_A_REG"), FatalError);
}

TEST(Assembler, DisassemblyRoundTrip)
{
    // toString must re-assemble to the same instruction.
    const char *statements[] = {
        "MOV X1,#7",
        "MOV X2,#1,LSL #40",
        "LDR X0,[X1]",
        "LDR X0,[X1,X2]",
        "STR X3,[X4],#8",
        "STR X3,[X4,#8]!",
        "LDAR X0,[X1]",
        "STLR X0,[X1]",
        "STXR W3,X2,[X1]",
        "DMB SY",
        "DSB ST",
        "ISB",
        "EOR X6,X2,X2",
        "ADD X5,X4,#1",
        "SVC #0",
        "ERET",
        "MRS X4,ELR_EL1",
        "MSR ESR_EL1,X5",
        "MSR DAIFSet,#15",
        "NOP",
    };
    for (const char *text : statements) {
        Instruction first = assembleStatement(text);
        Instruction second = assembleStatement(first.toString());
        EXPECT_EQ(first.toString(), second.toString()) << text;
    }
}

TEST(Assembler, PaperFigureListings)
{
    // The exact thread bodies from the paper's figures must assemble.
    EXPECT_NO_THROW(assemble(
        "MOV X0,#1\nSTR X0,[X1]\nDMB SY\nLDR X2,[X3]\n"));
    EXPECT_NO_THROW(assemble(
        "LDR X0,[X1]\nMRS X4,ESR_EL1\nEOR X5,X0,X0\nADD X5,X4,X5\n"
        "MSR ESR_EL1,X5\nSVC #0\n"));
    EXPECT_NO_THROW(assemble(
        "MRS X3,IAR\nAND X3,X3,#0xFFFFFF\nDSB SY\nMSR EOIR,X3\nISB\n"
        "MOV X0,#1\nLDR X1,[X2]\nDSB SY\nMSR DIR,X3\nERET\n"));
    EXPECT_NO_THROW(assemble(
        "MOV X2, #1, LSL #40\nMSR ICC_SGI1R_EL1, X2\n"));
}

} // namespace
} // namespace rex::isa
