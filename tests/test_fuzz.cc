/**
 * @file
 * Differential fuzzing over the src/gen synthesizer: generate litmus
 * tests (threads of loads, stores, barriers, dependency chains,
 * acquire/release pairs, exclusive RMWs, LDP/STP pairs, and
 * SVC/interrupt handler splices), then check that the shipped cat model
 * agrees with the native transcription on every candidate, and that
 * every outcome the operational simulator can reach is allowed by the
 * axiomatic model. The corpus is the same one the soundness hammer
 * (src/gen/hammer.hh) drives at campaign scale; here a small slice runs
 * in-tree so `ctest` exercises the whole pipeline on every build.
 *
 * The corpus fans out over the batch engine (REX_JOBS workers, default
 * hardware concurrency): each seed is one pool job returning a failure
 * description (empty = pass), and all assertions run on the main thread
 * over the collected results, so the corpus is embarrassingly parallel
 * without sharing gtest state across threads.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "cat/catmodel.hh"
#include "engine/batch.hh"
#include "gen/generator.hh"
#include "gen/hammer.hh"
#include "litmus/parser.hh"
#include "operational/explorer.hh"

namespace rex {
namespace {

LitmusTest
generateTest(std::uint64_t seed)
{
    return parseLitmus(gen::generate(seed, gen::GenConfig{}).source);
}

/** One cat-agreement job: "" on success, else a failure description. */
std::string
catAgreementJob(std::uint64_t seed)
{
    LitmusTest test = generateTest(seed);
    const cat::CatModel &model = cat::CatModel::shipped();
    CandidateEnumerator enumerator(test);
    std::size_t checked = 0;
    std::string failure;
    enumerator.forEach([&](CandidateExecution &cand) {
        bool native =
            checkConsistent(cand, ModelParams::base()).consistent;
        bool interpreted =
            model.check(cand, ModelParams::base()).consistent;
        if (native != interpreted) {
            failure = test.name + ": native " +
                (native ? "consistent" : "inconsistent") +
                " but cat " +
                (interpreted ? "consistent" : "inconsistent");
            return false;
        }
        return ++checked < 400;
    });
    if (failure.empty() && checked == 0)
        return test.name + ": no candidates enumerated";
    return failure;
}

/** One soundness job: "" on success/skip, else a failure description.
 *  Delegates to the hammer's per-seed check — the same code path the
 *  campaign CLI runs. */
std::string
soundnessJob(std::uint64_t seed, std::size_t &skipped)
{
    gen::HammerConfig config;
    gen::SeedResult result =
        gen::soundnessCheck(gen::generate(seed, config.gen), config);
    if (result.outcome == gen::SeedOutcome::Skipped) {
        ++skipped;
        return "";
    }
    if (result.outcome == gen::SeedOutcome::Violation) {
        std::string failure = "gen-" + std::to_string(seed) +
            ": operationally reachable but axiomatically forbidden:";
        for (const std::string &key : result.violating)
            failure += " " + key;
        return failure;
    }
    return "";
}

/** Differential fuzzing of the cat interpreter: the shipped Figure 9
 *  model must agree with the native transcription on random programs,
 *  not just the curated library. */
TEST(FuzzCatAgreement, CatAgreesWithNativeOnRandomPrograms)
{
    // Force the shipped model's lazy load before fanning out.
    cat::CatModel::shipped();
    engine::Engine engine{engine::EngineConfig{}};
    std::vector<std::string> failures =
        engine.map(60, [](std::size_t i) {
            return catAgreementJob(i + 1);
        });
    for (const std::string &failure : failures)
        EXPECT_EQ(failure, "");
}

TEST(FuzzSoundness, OperationalWithinAxiomatic)
{
    engine::Engine engine{engine::EngineConfig{}};
    std::vector<std::size_t> skips(400, 0);
    std::vector<std::string> failures =
        engine.map(400, [&skips](std::size_t i) {
            return soundnessJob((i + 1) * 2654435761u, skips[i]);
        });
    std::size_t skipped = 0;
    for (std::size_t s : skips)
        skipped += s;
    for (const std::string &failure : failures)
        EXPECT_EQ(failure, "");
    // The corpus must overwhelmingly run, not skip.
    EXPECT_LT(skipped, 40u);
}

} // namespace
} // namespace rex
