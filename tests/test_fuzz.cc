/**
 * @file
 * Differential fuzzing: generate random litmus tests (two threads of
 * random moves, loads, stores, barriers, dependency chains, acquire/
 * release pairs, and SVC+handler splices), then check that every
 * outcome the operational simulator can reach is allowed by the
 * axiomatic model. This is the library-wide soundness property of
 * test_operational.cc, extended beyond the hand-written suite to a
 * randomised corpus — deterministic given the seeds.
 *
 * The corpus fans out over the batch engine (REX_JOBS workers, default
 * hardware concurrency): each seed is one pool job returning a failure
 * description (empty = pass), and all assertions run on the main thread
 * over the collected results, so the corpus is embarrassingly parallel
 * without sharing gtest state across threads.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "cat/catmodel.hh"
#include "engine/batch.hh"
#include "litmus/parser.hh"
#include "operational/explorer.hh"

namespace rex {
namespace {

/** Small deterministic RNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform in [0, bound). */
    std::uint64_t pick(std::uint64_t bound) { return next() % bound; }

    bool chance(unsigned percent) { return pick(100) < percent; }

  private:
    std::uint64_t _state;
};

/**
 * Generate one random thread body. Registers: X0-X5 scratch, X10/X11
 * point at x/y. Returns the statements, plus a handler body when an SVC
 * was emitted.
 */
struct GeneratedThread {
    std::string body;
    std::string handler;
};

GeneratedThread
generateThread(Rng &rng, int tid)
{
    GeneratedThread out;
    int instructions = 2 + static_cast<int>(rng.pick(3));
    bool used_svc = false;
    int loads = 0;
    int stores = 0;
    std::string *sink = &out.body;

    for (int i = 0; i < instructions; ++i) {
        std::uint64_t choice = rng.pick(8);
        // Keep the candidate space tractable: at most 2 loads and 2
        // stores per thread (the dependency-chain case counts as 2
        // loads).
        if ((choice == 1 && loads >= 2) || (choice == 2 && stores >= 2) ||
                (choice == 4 && loads >= 1) ||
                (choice == 5 && (loads >= 2 || stores >= 2))) {
            choice = 3;
        }
        switch (choice) {
          case 0:
            *sink += "    MOV X" + std::to_string(rng.pick(4)) + ",#" +
                std::to_string(1 + rng.pick(3)) + "\n";
            break;
          case 1:
            ++loads;
            *sink += "    LDR X" + std::to_string(rng.pick(4)) + ",[X1" +
                std::to_string(rng.pick(2)) + "]\n";
            break;
          case 2:
            ++stores;
            *sink += "    STR X" + std::to_string(rng.pick(4)) + ",[X1" +
                std::to_string(rng.pick(2)) + "]\n";
            break;
          case 3:
            *sink += rng.chance(50) ? "    DMB SY\n"
                                    : (rng.chance(50) ? "    DMB LD\n"
                                                      : "    DMB ST\n");
            break;
          case 4: {
            // Dependency chain: load, mangle, use as offset.
            loads += 2;
            int dst = static_cast<int>(rng.pick(4));
            *sink += "    LDR X" + std::to_string(dst) + ",[X10]\n";
            *sink += "    EOR X5,X" + std::to_string(dst) + ",X" +
                std::to_string(dst) + "\n";
            *sink += "    LDR X4,[X11,X5]\n";
            break;
          }
          case 5:
            if (rng.chance(50)) {
                ++loads;
                *sink += "    LDAR X2,[X10]\n";
            } else {
                ++stores;
                *sink += "    STLR X3,[X11]\n";
            }
            break;
          case 6:
            if (rng.chance(40)) {
                *sink += "    ISB\n";
            } else if (rng.chance(50) && loads < 1) {
                // Pair load over the two adjacent cells.
                loads += 2;
                *sink += "    LDP X0,X1,[X10]\n";
            } else if (stores < 1) {
                stores += 2;
                *sink += "    STP X2,X3,[X10]\n";
            } else {
                // Flags-mediated control dependency.
                *sink += "    CMP X3,#1\n";
                *sink += "    B.EQ LF" + std::to_string(i) + "\n";
                *sink += "LF" + std::to_string(i) + ":\n";
                *sink += "    NOP\n";
            }
            break;
          case 7:
            if (!used_svc && sink == &out.body) {
                used_svc = true;
                *sink += "    SVC #0\n";
                // Continue generating into the handler; finish with an
                // ERET half the time (otherwise the thread ends there).
                sink = &out.handler;
                if (rng.chance(50)) {
                    out.handler += "    LDR X2,[X1" +
                        std::to_string(rng.pick(2)) + "]\n";
                    out.handler += "    ERET\n";
                    sink = &out.body;
                } else {
                    out.handler += "    STR X3,[X1" +
                        std::to_string(rng.pick(2)) + "]\n";
                }
            } else {
                *sink += "    NOP\n";
            }
            break;
        }
        (void)tid;
    }
    if (out.body.empty())
        out.body = "    NOP\n";
    return out;
}

LitmusTest
generateTest(std::uint64_t seed)
{
    Rng rng(seed);
    std::string text = "name: fuzz-" + std::to_string(seed) + "\n";
    text += "init: *x=0; *y=0;";
    for (int t = 0; t < 2; ++t) {
        text += " " + std::to_string(t) + ":X10=x;";
        text += " " + std::to_string(t) + ":X11=y;";
        text += " " + std::to_string(t) + ":X3=1;";
    }
    text += "\n";

    std::string handlers;
    for (int t = 0; t < 2; ++t) {
        GeneratedThread thread = generateThread(rng, t);
        text += "thread " + std::to_string(t) + ":\n" + thread.body;
        if (!thread.handler.empty()) {
            handlers += "handler " + std::to_string(t) + ":\n" +
                thread.handler;
        }
    }
    text += handlers;
    // The condition is irrelevant for soundness (we compare outcome
    // projections), but the format requires one.
    text += "allowed: *x=0\n";
    return parseLitmus(text);
}

/** Outcome key of a candidate in the machine's format (memory plus the
 *  registers in the condition — here memory only). */
std::string
axiomaticKey(const LitmusTest &test, const CandidateExecution &cand)
{
    std::string out;
    for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
        out += "*" + test.locations[loc] + "=" +
            std::to_string(cand.finalMemValue(loc)) + ";";
    }
    return out;
}

/** One cat-agreement job: "" on success, else a failure description. */
std::string
catAgreementJob(std::uint64_t seed)
{
    LitmusTest test = generateTest(seed);
    const cat::CatModel &model = cat::CatModel::shipped();
    CandidateEnumerator enumerator(test);
    std::size_t checked = 0;
    std::string failure;
    enumerator.forEach([&](CandidateExecution &cand) {
        bool native =
            checkConsistent(cand, ModelParams::base()).consistent;
        bool interpreted =
            model.check(cand, ModelParams::base()).consistent;
        if (native != interpreted) {
            failure = test.name + ": native " +
                (native ? "consistent" : "inconsistent") +
                " but cat " +
                (interpreted ? "consistent" : "inconsistent");
            return false;
        }
        return ++checked < 400;
    });
    if (failure.empty() && checked == 0)
        return test.name + ": no candidates enumerated";
    return failure;
}

/** One soundness job: "" on success/skip, else a failure description. */
std::string
soundnessJob(std::uint64_t seed, std::size_t &skipped)
{
    LitmusTest test = generateTest(seed);

    // Bail out on pathologically large candidate spaces (rare seeds).
    CandidateEnumerator enumerator(test);
    std::size_t candidates = 0;
    enumerator.forEach([&](CandidateExecution &) {
        return ++candidates < 150000;
    });
    if (candidates >= 150000) {
        ++skipped;
        return "";
    }

    std::set<std::string> allowed;
    enumerator.forEach([&](CandidateExecution &cand) {
        if (checkConsistent(cand, ModelParams::base()).consistent)
            allowed.insert(axiomaticKey(test, cand));
        return true;
    });
    if (allowed.empty())
        return test.name + ": no axiomatically allowed outcome";

    op::ExploreResult explored =
        op::explore(test, op::CoreProfile::maxRelaxed(), 300000);
    for (const std::string &outcome : explored.outcomes) {
        if (!allowed.count(outcome)) {
            return test.name + ": operational outcome " + outcome +
                " not axiomatically allowed\nprogram:\n" +
                test.threads[0].program.toString() + "---\n" +
                test.threads[1].program.toString();
        }
    }
    if (explored.outcomes.empty())
        return test.name + ": operational explorer found no outcome";
    return "";
}

/** Differential fuzzing of the cat interpreter: the shipped Figure 9
 *  model must agree with the native transcription on random programs,
 *  not just the curated library. */
TEST(FuzzCatAgreement, CatAgreesWithNativeOnRandomPrograms)
{
    // Force the shipped model's lazy load before fanning out.
    cat::CatModel::shipped();
    engine::Engine engine{engine::EngineConfig{}};
    std::vector<std::string> failures =
        engine.map(60, [](std::size_t i) {
            return catAgreementJob(i + 1);
        });
    for (const std::string &failure : failures)
        EXPECT_EQ(failure, "");
}

TEST(FuzzSoundness, OperationalWithinAxiomatic)
{
    engine::Engine engine{engine::EngineConfig{}};
    std::vector<std::size_t> skips(400, 0);
    std::vector<std::string> failures =
        engine.map(400, [&skips](std::size_t i) {
            return soundnessJob((i + 1) * 2654435761u, skips[i]);
        });
    std::size_t skipped = 0;
    for (std::size_t s : skips)
        skipped += s;
    for (const std::string &failure : failures)
        EXPECT_EQ(failure, "");
    // The corpus must overwhelmingly run, not skip.
    EXPECT_LT(skipped, 40u);
}

} // namespace
} // namespace rex
