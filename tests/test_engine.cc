/**
 * @file
 * Tests for the batch-execution engine: the work-stealing thread pool
 * (submission, exception propagation, graceful shutdown under load),
 * the content-addressed verdict cache (keying, roundtrips, on-disk
 * persistence, collision-safe verification), the JSONL results sink,
 * and — the engine's central contract — that parallel suite verdicts
 * and rendered tables are byte-identical to the serial path across the
 * whole built-in suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "axiomatic/checker.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/pool.hh"
#include "engine/results.hh"
#include "harness/runner.hh"
#include "litmus/registry.hh"

namespace rex {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
        ("rex_engine_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

engine::EngineConfig
plainConfig(unsigned jobs)
{
    engine::EngineConfig config;
    config.jobs = jobs;
    config.cacheEnabled = false;
    return config;
}

// ---------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsValue)
{
    engine::ThreadPool pool(2);
    std::future<int> future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete)
{
    engine::ThreadPool pool(4);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 500; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (std::future<void> &future : futures)
        future.get();
    EXPECT_EQ(sum.load(), 500 * 501 / 2);
    EXPECT_EQ(pool.submitted(), 500u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    engine::ThreadPool pool(2);
    std::future<int> boom = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    std::future<int> fine = pool.submit([] { return 1; });
    EXPECT_THROW(boom.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(fine.get(), 1);
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    {
        engine::ThreadPool pool(3);
        for (int i = 0; i < 200; ++i) {
            futures.push_back(pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                ++ran;
            }));
        }
        // Destructor runs while most tasks are still queued.
    }
    EXPECT_EQ(ran.load(), 200);
    for (std::future<void> &future : futures) {
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    }
}

TEST(ThreadPool, SingleWorkerRunsEverything)
{
    engine::ThreadPool pool(1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futures[i].get(), i);
}

// ---------------------------------------------------------------------
// Engine map
// ---------------------------------------------------------------------

TEST(EngineMap, ResultsComeBackInSubmissionOrder)
{
    engine::Engine engine{plainConfig(4)};
    std::vector<std::size_t> out =
        engine.map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(EngineMap, JobsOneRunsInlineOnCallingThread)
{
    engine::Engine engine{plainConfig(1)};
    EXPECT_EQ(engine.jobs(), 1u);
    std::thread::id self = std::this_thread::get_id();
    std::vector<bool> inline_run =
        engine.map(4, [self](std::size_t) {
            return std::this_thread::get_id() == self;
        });
    for (bool on_caller : inline_run)
        EXPECT_TRUE(on_caller);
}

TEST(EngineMap, ExceptionRethrownAtFailingIndex)
{
    engine::Engine engine{plainConfig(2)};
    EXPECT_THROW(engine.map(8,
                            [](std::size_t i) -> int {
                                if (i == 5)
                                    throw std::runtime_error("at 5");
                                return 0;
                            }),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Verdict cache
// ---------------------------------------------------------------------

TEST(VerdictCache, CanonicalTextDistinguishesTests)
{
    const TestRegistry &registry = TestRegistry::instance();
    std::string sb = engine::canonicalTestText(registry.get("SB+pos"));
    std::string mp = engine::canonicalTestText(registry.get("MP+pos"));
    EXPECT_NE(sb, mp);
    // Stable across calls.
    EXPECT_EQ(sb, engine::canonicalTestText(registry.get("SB+pos")));
}

TEST(VerdictCache, ParamsTextCoversEveryAxis)
{
    using engine::canonicalParamsText;
    std::string base = canonicalParamsText(ModelParams::base());
    EXPECT_NE(base, canonicalParamsText(ModelParams::exs()));
    EXPECT_NE(base, canonicalParamsText(ModelParams::seaReads()));
    EXPECT_NE(base, canonicalParamsText(ModelParams::seaWrites()));
    ModelParams no_ets2 = ModelParams::base();
    no_ets2.featEts2 = false;
    EXPECT_NE(base, canonicalParamsText(no_ets2));
    ModelParams no_gic = ModelParams::base();
    no_gic.gicExtension = false;
    EXPECT_NE(base, canonicalParamsText(no_gic));
}

TEST(VerdictCache, KeyDependsOnRevision)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    engine::VerdictKey r1 =
        engine::VerdictKey::make(test, ModelParams::base(), "r1");
    engine::VerdictKey r2 =
        engine::VerdictKey::make(test, ModelParams::base(), "r2");
    EXPECT_NE(r1.hash, r2.hash);
    EXPECT_NE(r1.text, r2.text);
}

TEST(VerdictCache, StoreLookupRoundtrip)
{
    engine::VerdictCache cache(true, "");
    const LitmusTest &test = TestRegistry::instance().get("MP+dmb.sys");
    engine::VerdictKey key =
        engine::VerdictKey::make(test, ModelParams::base());

    EXPECT_FALSE(cache.lookup(key).has_value());
    engine::CachedVerdict verdict;
    verdict.observable = false;
    verdict.candidates = 77;
    verdict.forbiddingAxiom = "external";
    verdict.forbiddingCycle = {2, 5, 9};
    cache.store(key, verdict);

    std::optional<engine::CachedVerdict> back = cache.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->observable);
    EXPECT_EQ(back->candidates, 77u);
    EXPECT_EQ(back->forbiddingAxiom, "external");
    EXPECT_EQ(back->forbiddingCycle, (std::vector<EventId>{2, 5, 9}));
    EXPECT_EQ(back->forbiddingSummary(), "external:2->5->9");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(VerdictCache, PersistsAcrossInstances)
{
    std::string dir = scratchDir("persist");
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    engine::VerdictKey key =
        engine::VerdictKey::make(test, ModelParams::base());

    engine::CachedVerdict verdict;
    verdict.observable = true;
    verdict.candidates = 123;
    verdict.consistent = 9;
    verdict.witnesses = 3;
    {
        engine::VerdictCache writer(true, dir);
        writer.store(key, verdict);
    }
    engine::VerdictCache reader(true, dir);
    std::optional<engine::CachedVerdict> back = reader.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->observable);
    EXPECT_EQ(back->candidates, 123u);
    EXPECT_EQ(back->consistent, 9u);
    EXPECT_EQ(back->witnesses, 3u);
    EXPECT_EQ(back->forbiddingSummary(), "");

    // A different key (other params) stays a miss.
    engine::VerdictKey other =
        engine::VerdictKey::make(test, ModelParams::seaBoth());
    EXPECT_FALSE(reader.lookup(other).has_value());
}

TEST(VerdictCache, CorruptDiskEntryIsAMiss)
{
    std::string dir = scratchDir("corrupt");
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    engine::VerdictKey key =
        engine::VerdictKey::make(test, ModelParams::base());
    {
        std::ofstream out(dir + "/" + key.hashHex() + ".rexv");
        out << "rex-verdict-v1\nobservable 1\ngarbage!\n";
    }
    engine::VerdictCache cache(true, dir);
    EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(VerdictCache, ByteCapEvictsOldestOnOverflow)
{
    std::string dir = scratchDir("cap_overflow");
    const TestRegistry &registry = TestRegistry::instance();

    // Three distinct keys (same test, different params). Measure one
    // entry's on-disk size first so the cap is two entries' worth.
    engine::VerdictKey keys[3] = {
        engine::VerdictKey::make(registry.get("SB+pos"),
                                 ModelParams::base()),
        engine::VerdictKey::make(registry.get("SB+pos"),
                                 ModelParams::exs()),
        engine::VerdictKey::make(registry.get("SB+pos"),
                                 ModelParams::seaBoth()),
    };
    std::uint64_t one_entry;
    {
        engine::VerdictCache probe(true, dir);
        probe.store(keys[0], engine::CachedVerdict{});
        one_entry = probe.diskBytes();
        ASSERT_GT(one_entry, 0u);
    }
    fs::remove_all(dir);
    fs::create_directories(dir);

    engine::VerdictCache cache(true, dir, 2 * one_entry + one_entry / 2);
    for (int i = 0; i < 3; ++i) {
        cache.store(keys[i], engine::CachedVerdict{});
        // Distinct mtimes, so oldest-first is deterministic.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_LE(cache.diskBytes(), cache.maxBytes());

    // The oldest entry's file is gone; the newest two survive.
    EXPECT_FALSE(fs::exists(dir + "/" + keys[0].hashHex() + ".rexv"));
    EXPECT_TRUE(fs::exists(dir + "/" + keys[1].hashHex() + ".rexv"));
    EXPECT_TRUE(fs::exists(dir + "/" + keys[2].hashHex() + ".rexv"));

    // A fresh cache over the same directory misses the evicted key and
    // still hits the surviving ones.
    engine::VerdictCache reader(true, dir);
    EXPECT_FALSE(reader.lookup(keys[0]).has_value());
    EXPECT_TRUE(reader.lookup(keys[1]).has_value());
    EXPECT_TRUE(reader.lookup(keys[2]).has_value());
}

TEST(VerdictCache, ByteCapTrimsPreexistingEntriesAtStartup)
{
    std::string dir = scratchDir("cap_startup");
    const TestRegistry &registry = TestRegistry::instance();
    engine::VerdictKey old_key =
        engine::VerdictKey::make(registry.get("MP+pos"),
                                 ModelParams::base());
    engine::VerdictKey new_key =
        engine::VerdictKey::make(registry.get("MP+pos"),
                                 ModelParams::exs());
    {
        engine::VerdictCache writer(true, dir);
        writer.store(old_key, engine::CachedVerdict{});
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        writer.store(new_key, engine::CachedVerdict{});
        ASSERT_EQ(writer.evictions(), 0u);
    }

    // Reopen with a cap that only fits one entry: the retroactive trim
    // deletes the older file during construction.
    std::uint64_t total;
    {
        engine::VerdictCache probe(true, dir);
        total = probe.diskBytes();
    }
    engine::VerdictCache capped(true, dir, total - 1);
    EXPECT_EQ(capped.evictions(), 1u);
    EXPECT_FALSE(fs::exists(dir + "/" + old_key.hashHex() + ".rexv"));
    EXPECT_TRUE(fs::exists(dir + "/" + new_key.hashHex() + ".rexv"));
    EXPECT_FALSE(capped.lookup(old_key).has_value());
    EXPECT_TRUE(capped.lookup(new_key).has_value());
}

TEST(VerdictCache, ZeroCapMeansUnlimited)
{
    std::string dir = scratchDir("cap_zero");
    engine::VerdictCache cache(true, dir, 0);
    const TestRegistry &registry = TestRegistry::instance();
    for (const char *name : {"SB+pos", "MP+pos", "LB+pos", "CoRR"}) {
        cache.store(engine::VerdictKey::make(registry.get(name),
                                             ModelParams::base()),
                    engine::CachedVerdict{});
    }
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_GT(cache.diskBytes(), 0u);
}

TEST(VerdictCache, DisabledCacheNeverHits)
{
    engine::VerdictCache cache(false, "");
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    engine::VerdictKey key =
        engine::VerdictKey::make(test, ModelParams::base());
    cache.store(key, engine::CachedVerdict{});
    EXPECT_FALSE(cache.lookup(key).has_value());
}

// ---------------------------------------------------------------------
// Engine verdicts
// ---------------------------------------------------------------------

TEST(EngineVerdict, AgreesWithDirectCheckerAcrossSeaSuite)
{
    engine::Engine engine{plainConfig(2)};
    for (const LitmusTest *test :
            TestRegistry::instance().suite("sea")) {
        for (const ModelParams &params : ModelParams::paperVariants()) {
            EXPECT_EQ(engine.verdict(*test, params).observable,
                      isAllowed(*test, params))
                << test->name << " under " << params.name();
        }
    }
}

TEST(EngineVerdict, SecondCallIsACacheHit)
{
    engine::EngineConfig config = plainConfig(1);
    config.cacheEnabled = true;
    engine::Engine engine{config};
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");

    CheckResult first = engine.verdict(test, ModelParams::base());
    EXPECT_EQ(engine.cache().hits(), 0u);
    CheckResult second = engine.verdict(test, ModelParams::base());
    EXPECT_EQ(engine.cache().hits(), 1u);
    EXPECT_EQ(first.observable, second.observable);
    EXPECT_EQ(first.candidates, second.candidates);
}

TEST(EngineVerdict, ForbiddenVerdictCarriesForbiddingSummary)
{
    engine::Engine engine{plainConfig(1)};
    const LitmusTest &test =
        TestRegistry::instance().get("MP+dmb.sy+addr");
    CheckResult result = engine.verdict(test, ModelParams::base());
    EXPECT_FALSE(result.observable);
    EXPECT_FALSE(result.forbiddingAxiom.empty());
}

// ---------------------------------------------------------------------
// Checker short-circuiting
// ---------------------------------------------------------------------

TEST(CheckerShortCircuit, AllowedVerdictStopsEarly)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    CheckResult full = checkTest(test, ModelParams::base());
    CheckResult quick =
        checkTest(test, ModelParams::base(), true, false);
    EXPECT_TRUE(full.observable);
    EXPECT_TRUE(quick.observable);
    // The short-circuited check visits strictly fewer candidates.
    EXPECT_LT(quick.candidates, full.candidates);
    // And skips the witness copy.
    EXPECT_FALSE(quick.witness.has_value());
    EXPECT_TRUE(full.witness.has_value());
}

TEST(CheckerShortCircuit, ForbiddingExplanationRecorded)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP+dmb.sy+addr");
    CheckResult result =
        checkTest(test, ModelParams::base(), true, false);
    EXPECT_FALSE(result.observable);
    EXPECT_FALSE(result.forbiddingAxiom.empty());
    EXPECT_FALSE(result.forbiddingCycle.empty());
}

// ---------------------------------------------------------------------
// Results sink
// ---------------------------------------------------------------------

TEST(ResultsSink, EscapesJsonStrings)
{
    EXPECT_EQ(engine::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(engine::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ResultsSink, WritesOneWellFormedLinePerRecord)
{
    std::string dir = scratchDir("sink");
    std::string path = dir + "/out.jsonl";
    engine::ResultsSink sink;
    sink.open(path);
    ASSERT_TRUE(sink.enabled());

    engine::JobRecord record;
    record.test = "T\"quoted\"";
    record.variant = "base";
    record.verdict = "Allowed";
    record.candidates = 3;
    sink.append(record);
    record.kind = "hwsim";
    record.runs = 100;
    sink.append(record);
    EXPECT_EQ(sink.records(), 2u);

    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"test\":\"T\\\"quoted\\\"\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"cache_hit\":false"), std::string::npos);
    }
    EXPECT_EQ(lines, 2u);
}

// ---------------------------------------------------------------------
// Determinism: parallel == serial, byte for byte
// ---------------------------------------------------------------------

TEST(EngineDeterminism, SuiteMatrixIdenticalAcrossJobCounts)
{
    const TestRegistry &registry = TestRegistry::instance();
    engine::Engine serial{plainConfig(1)};
    engine::Engine parallel{plainConfig(4)};
    for (const char *suite : {"core", "exceptions", "sea", "gic"}) {
        EXPECT_EQ(harness::suiteMatrix(registry.suite(suite), serial),
                  harness::suiteMatrix(registry.suite(suite), parallel))
            << "suite " << suite;
    }
}

TEST(EngineDeterminism, SuiteMatrixIdenticalWithWarmCache)
{
    const TestRegistry &registry = TestRegistry::instance();
    engine::EngineConfig config = plainConfig(4);
    config.cacheEnabled = true;
    config.cacheDir = scratchDir("warm");
    std::string cold, warm;
    {
        engine::Engine engine{config};
        cold = harness::suiteMatrix(registry.suite("sea"), engine);
    }
    {
        engine::Engine engine{config};
        warm = harness::suiteMatrix(registry.suite("sea"), engine);
        EXPECT_GT(engine.cache().hits(), 0u);
    }
    EXPECT_EQ(cold, warm);
}

TEST(EngineDeterminism, FigureReproductionIdenticalAcrossJobCounts)
{
    engine::Engine serial{plainConfig(1)};
    engine::Engine parallel{plainConfig(4)};
    harness::FigureOptions options;
    options.runsPerDevice = 200;
    options.catCrossCheck = true;
    for (const char *name : {"SB+dmb.sy+eret", "MP+dmb.sy+fault"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        std::string a = harness::reproduceFigure(test, options, serial);
        std::string b =
            harness::reproduceFigure(test, options, parallel);
        EXPECT_EQ(a, b) << name;
        EXPECT_NE(a.find("cat-vs-native cross-check: agree"),
                  std::string::npos)
            << name;
    }
}

// ---------------------------------------------------------------------
// Reproducible hw-sim seeding
// ---------------------------------------------------------------------

TEST(FigureSeeding, SeedsAreStableAndDistinct)
{
    harness::FigureOptions options;
    std::uint64_t a = options.seedFor("SB+pos", "cortex-a53");
    EXPECT_EQ(a, options.seedFor("SB+pos", "cortex-a53"));
    EXPECT_NE(a, options.seedFor("SB+pos", "cortex-a73"));
    EXPECT_NE(a, options.seedFor("MP+pos", "cortex-a53"));
    EXPECT_NE(a, 0u);

    harness::FigureOptions reseeded;
    reseeded.seed = 43;
    EXPECT_NE(a, reseeded.seedFor("SB+pos", "cortex-a53"));
}

} // namespace
} // namespace rex
