/**
 * @file
 * Tests for the rexgen subsystem (src/gen): synthesizer determinism,
 * parser round-trips of generated sources, the cycle inventory, the
 * minimizer's pass structure (via an injected fake oracle), hammer
 * checkpoint/resume identity, and feature coverage of the paper's
 * exception machinery over a small campaign.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "engine/batch.hh"
#include "gen/cycle.hh"
#include "gen/generator.hh"
#include "gen/hammer.hh"
#include "gen/minimize.hh"
#include "litmus/parser.hh"

namespace rex::gen {
namespace {

// ---------------------------------------------------------------------
// Generator determinism and round-trips.
// ---------------------------------------------------------------------

TEST(Generator, SeedDeterminesBytes)
{
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 999ull, 123456789ull}) {
        GeneratedTest a = generate(seed, GenConfig{});
        GeneratedTest b = generate(seed, GenConfig{});
        EXPECT_EQ(a.source, b.source) << "seed " << seed;
    }
}

TEST(Generator, SourcesRoundTripThroughParser)
{
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        GeneratedTest test = generate(seed, GenConfig{});
        LitmusTest parsed = parseLitmus(test.source);
        EXPECT_EQ(parsed.name, "gen-" + std::to_string(seed));
        EXPECT_EQ(parsed.threads.size(), test.spec.threads.size());
    }
}

TEST(Generator, FeaturesReflectSpec)
{
    TestSpec spec;
    spec.name = "feat";
    ThreadSpec thread;
    Op rmw;
    rmw.kind = Op::Kind::Rmw;
    thread.body.push_back(rmw);
    thread.interrupt = true;
    spec.threads.push_back(thread);
    spec.threads.push_back(ThreadSpec{});
    spec.threads.back().body.push_back(Op{});  // a load

    Features f = specFeatures(spec);
    EXPECT_EQ(f.interrupt, 1u);
    EXPECT_EQ(f.handler, 1u);
    EXPECT_EQ(f.rmw, 1u);
    EXPECT_EQ(f.svc, 0u);
    EXPECT_EQ(f.eret, 0u);
    EXPECT_EQ(f.threads3, 0u);
}

// ---------------------------------------------------------------------
// Cycle inventory.
// ---------------------------------------------------------------------

TEST(Cycle, InventoryIsDeterministicAndParses)
{
    HammerConfig config;
    config.mode = Mode::Cycle;
    config.seedEnd = 1;
    Hammer a(config), b(config);
    ASSERT_GT(a.inventorySize(), 200u);
    EXPECT_EQ(a.inventorySize(), b.inventorySize());

    // Every inventory entry synthesizes deterministically and parses.
    for (std::size_t i = 0; i < a.inventorySize(); i += 7) {
        GeneratedTest ta = a.testForSeed(i);
        GeneratedTest tb = b.testForSeed(i);
        EXPECT_EQ(ta.source, tb.source);
        LitmusTest parsed = parseLitmus(ta.source);
        EXPECT_FALSE(parsed.threads.empty());
    }
}

TEST(Cycle, InventoryCoversExceptionEdges)
{
    HammerConfig config;
    config.mode = Mode::Cycle;
    config.seedEnd = 1;
    Hammer hammer(config);

    Features total;
    for (std::size_t i = 0; i < hammer.inventorySize(); ++i)
        total.merge(hammer.testForSeed(i).features);
    EXPECT_GT(total.svc, 0u);
    EXPECT_GT(total.eret, 0u);
    EXPECT_GT(total.interrupt, 0u);
    EXPECT_GT(total.dep, 0u);
    EXPECT_GT(total.barrier, 0u);
}

// ---------------------------------------------------------------------
// Campaign determinism across job counts.
// ---------------------------------------------------------------------

std::string
campaignRender(unsigned jobs)
{
    HammerConfig config;
    config.seedEnd = 200;
    config.chunk = 64;
    Hammer hammer(config);
    engine::EngineConfig engine_config;
    engine_config.jobs = jobs;
    engine::Engine engine(engine_config);
    return hammer.run(engine).render();
}

TEST(Hammer, SummaryIdenticalAcrossJobCounts)
{
    EXPECT_EQ(campaignRender(1), campaignRender(4));
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

/** Temp checkpoint path in the build directory; removed on scope exit. */
struct ScopedPath {
    std::string path;
    explicit ScopedPath(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~ScopedPath() { std::remove(path.c_str()); }
};

TEST(Hammer, ResumeMatchesUninterruptedRun)
{
    HammerConfig config;
    config.seedEnd = 96;
    config.chunk = 32;

    engine::EngineConfig engine_config;
    engine_config.jobs = 2;
    engine::Engine engine(engine_config);

    // The uninterrupted reference run (no checkpointing).
    std::string reference = Hammer(config).run(engine).render();

    // Simulate a campaign killed after its first chunk: accumulate the
    // first 32 seeds exactly as run() does and checkpoint that state.
    ScopedPath ckpt("test_gen_resume.ckpt");
    config.checkpointPath = ckpt.path;
    Hammer hammer(config);
    CampaignSummary partial;
    partial.seedBegin = config.seedBegin;
    partial.seedEnd = config.seedEnd;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        SeedResult result = hammer.checkSeed(seed);
        ++partial.tested;
        partial.features.merge(result.features);
        switch (result.outcome) {
          case SeedOutcome::Sound: ++partial.sound; break;
          case SeedOutcome::Skipped: ++partial.skipped; break;
          case SeedOutcome::Violation:
            partial.violationSeeds.push_back(seed);
            break;
        }
    }
    partial.nextSeed = 32;
    saveCheckpoint(ckpt.path, hammer.fingerprint(), partial);

    // The resumed run must only process seeds [32, 96) and its final
    // summary must be byte-identical to the uninterrupted run's.
    CampaignSummary resumed = hammer.run(engine);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.render(), reference);
}

TEST(Hammer, CheckpointRoundTripsAndChecksFingerprint)
{
    ScopedPath ckpt("test_gen_ckpt.ckpt");

    CampaignSummary summary;
    summary.seedBegin = 5;
    summary.seedEnd = 105;
    summary.nextSeed = 55;
    summary.tested = 50;
    summary.sound = 48;
    summary.skipped = 1;
    summary.violationSeeds = {17};
    summary.features.svc = 12;
    summary.features.pair = 3;

    saveCheckpoint(ckpt.path, 0xabcdefull, summary);
    CampaignSummary loaded;
    ASSERT_TRUE(loadCheckpoint(ckpt.path, 0xabcdefull, loaded));
    EXPECT_EQ(loaded.render(), summary.render());
    EXPECT_EQ(loaded.nextSeed, 55u);
    EXPECT_EQ(loaded.violationSeeds, summary.violationSeeds);

    // A checkpoint from a different configuration must be refused, not
    // silently reinterpreted.
    EXPECT_THROW(loadCheckpoint(ckpt.path, 0x123ull, loaded), FatalError);

    // Missing file: clean "no checkpoint" signal.
    EXPECT_FALSE(
        loadCheckpoint("test_gen_missing.ckpt", 0xabcdefull, loaded));
}

TEST(Hammer, FingerprintTracksConfiguration)
{
    HammerConfig a;
    a.seedEnd = 100;
    HammerConfig b = a;
    b.seedEnd = 101;
    HammerConfig c = a;
    c.gen.rmw = false;
    EXPECT_NE(Hammer(a).fingerprint(), Hammer(b).fingerprint());
    EXPECT_NE(Hammer(a).fingerprint(), Hammer(c).fingerprint());
    EXPECT_EQ(Hammer(a).fingerprint(), Hammer(a).fingerprint());
}

// ---------------------------------------------------------------------
// Minimizer pass structure (injected fake oracle).
// ---------------------------------------------------------------------

/** The property the fake oracle preserves: some thread stores to
 *  location 0 (any section). */
bool
storesToLocZero(const TestSpec &spec)
{
    for (const ThreadSpec &thread : spec.threads) {
        for (const std::vector<Op> ThreadSpec::*section :
             {&ThreadSpec::body, &ThreadSpec::after,
              &ThreadSpec::handler}) {
            for (const Op &op : thread.*section) {
                if (op.kind == Op::Kind::Store && op.loc == 0)
                    return true;
            }
        }
    }
    return false;
}

TEST(Minimize, ShrinksToTheOracleCore)
{
    TestSpec spec;
    spec.name = "fake";
    spec.numLocations = 2;

    ThreadSpec t0;
    Op load;
    load.kind = Op::Kind::Load;
    load.loc = 1;
    Op fence;
    fence.kind = Op::Kind::Fence;
    Op store;
    store.kind = Op::Kind::Store;
    store.loc = 0;
    store.value = 1;
    store.release = true;
    t0.body = {load, fence, store};
    t0.svc = true;
    t0.eret = true;
    t0.handler = {fence};

    ThreadSpec t1;
    t1.body = {fence, fence};

    spec.threads = {t0, t1};
    SpecCond atom;
    atom.tid = 0;
    atom.slot = 0;
    spec.condition = {atom};

    // The oracle must hold for every spec minimize() returns, and every
    // candidate shrink must still render (the oracle sees valid specs).
    unsigned queried = 0;
    Oracle oracle = [&](const TestSpec &candidate) {
        ++queried;
        EXPECT_FALSE(render(candidate).empty());
        return storesToLocZero(candidate);
    };

    MinimizeStats stats;
    TestSpec minimal = minimize(spec, oracle, &stats);

    EXPECT_TRUE(storesToLocZero(minimal));
    EXPECT_GT(queried, 0u);
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_GE(stats.attempts, stats.accepted);

    // Everything the property does not need is gone: the second
    // thread, the exception machinery, the other ops, the annotation,
    // the condition, and the now-unused second location.
    ASSERT_EQ(minimal.threads.size(), 1u);
    EXPECT_EQ(minimal.threads[0].body.size(), 1u);
    EXPECT_EQ(minimal.threads[0].body[0].kind, Op::Kind::Store);
    EXPECT_FALSE(minimal.threads[0].body[0].release);
    EXPECT_TRUE(minimal.threads[0].handler.empty());
    EXPECT_FALSE(minimal.threads[0].svc);
    EXPECT_FALSE(minimal.threads[0].eret);
    EXPECT_TRUE(minimal.condition.empty());
    EXPECT_EQ(minimal.numLocations, 1);
}

TEST(Minimize, RejectsNonViolatingInput)
{
    TestSpec spec = generate(1, GenConfig{}).spec;
    Oracle never = [](const TestSpec &) { return false; };
    EXPECT_THROW(minimize(spec, never), FatalError);
}

TEST(Minimize, PromoteEmitsVerdictLines)
{
    TestSpec spec;
    spec.name = "ignored";
    spec.numLocations = 1;
    ThreadSpec t0;
    Op store;
    store.kind = Op::Kind::Store;
    store.value = 1;
    t0.body = {store};
    spec.threads = {t0};
    SpecCond atom;
    atom.memory = true;
    atom.value = 1;
    spec.condition = {atom};

    std::string source = promote(spec, "promoted-name");
    EXPECT_EQ(source.rfind("name: promoted-name", 0), 0u);
    // A single unconditional store makes *x=1 certain: allowed.
    EXPECT_NE(source.find("allowed: *x=1"), std::string::npos);
    EXPECT_NE(source.find("variant SEA_RW: "), std::string::npos);
    // Promoted sources parse (registry-ready).
    EXPECT_NO_THROW(parseLitmus(source));
}

// ---------------------------------------------------------------------
// Campaign feature coverage (the acceptance counters).
// ---------------------------------------------------------------------

TEST(Hammer, SmallCampaignIsSoundAndCoversExceptionMachinery)
{
    HammerConfig config;
    config.seedEnd = 300;
    Hammer hammer(config);
    engine::EngineConfig engine_config;
    engine::Engine engine(engine_config);
    CampaignSummary summary = hammer.run(engine);

    EXPECT_TRUE(summary.complete());
    EXPECT_EQ(summary.tested, 300u);
    EXPECT_TRUE(summary.violationSeeds.empty())
        << summary.render();

    // The paper's exception machinery must actually be exercised.
    EXPECT_GT(summary.features.svc, 0u);
    EXPECT_GT(summary.features.eret, 0u);
    EXPECT_GT(summary.features.interrupt, 0u);
    EXPECT_GT(summary.features.handler, 0u);
    EXPECT_GT(summary.features.barrier, 0u);
    EXPECT_GT(summary.features.acqRel, 0u);
    EXPECT_GT(summary.features.rmw, 0u);
    EXPECT_GT(summary.features.dep, 0u);
    EXPECT_GT(summary.features.pair, 0u);
    EXPECT_GT(summary.features.threads3, 0u);
}

} // namespace
} // namespace rex::gen
