/**
 * @file
 * Unit and property tests for the relation-algebra substrate. The
 * property tests sweep universe sizes (including sizes straddling the
 * 64-bit word boundary) with parameterised gtest.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "relation/relation.hh"

namespace rex {
namespace {

TEST(EventSetTest, InsertEraseContains)
{
    EventSet set(10);
    EXPECT_TRUE(set.empty());
    set.insert(3);
    set.insert(7);
    EXPECT_TRUE(set.contains(3));
    EXPECT_FALSE(set.contains(4));
    EXPECT_EQ(set.count(), 2u);
    set.erase(3);
    EXPECT_FALSE(set.contains(3));
}

TEST(EventSetTest, UniverseMasksExcessBits)
{
    EventSet u = EventSet::universe(70);
    EXPECT_EQ(u.count(), 70u);
    EXPECT_EQ(u.complement().count(), 0u);
    EXPECT_EQ(u, u | u);
    EXPECT_EQ(u, u & u);
}

TEST(EventSetTest, SetAlgebra)
{
    EventSet a(8), b(8);
    a.insert(1);
    a.insert(2);
    b.insert(2);
    b.insert(3);
    EXPECT_EQ((a | b).count(), 3u);
    EXPECT_EQ((a & b).count(), 1u);
    EXPECT_EQ((a - b).count(), 1u);
    EXPECT_TRUE((a - b).contains(1));
    EXPECT_EQ(a.complement().count(), 6u);
}

TEST(EventSetTest, MembersSortedAndToString)
{
    EventSet a(8);
    a.insert(5);
    a.insert(1);
    auto members = a.members();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0], 1u);
    EXPECT_EQ(members[1], 5u);
    EXPECT_EQ(a.toString(), "{1, 5}");
}

TEST(EventSetTest, MismatchedUniversePanics)
{
    EventSet a(4), b(5);
    EXPECT_THROW(a | b, PanicError);
    EXPECT_THROW(a.insert(4), PanicError);
}

TEST(RelationTest, AddRemoveContains)
{
    Relation r(6);
    r.add(0, 1);
    r.add(1, 2);
    EXPECT_TRUE(r.contains(0, 1));
    EXPECT_FALSE(r.contains(1, 0));
    EXPECT_EQ(r.pairCount(), 2u);
    r.remove(0, 1);
    EXPECT_FALSE(r.contains(0, 1));
}

TEST(RelationTest, Composition)
{
    Relation r(5), s(5);
    r.add(0, 1);
    r.add(0, 2);
    s.add(1, 3);
    s.add(2, 4);
    Relation rs = r.seq(s);
    EXPECT_TRUE(rs.contains(0, 3));
    EXPECT_TRUE(rs.contains(0, 4));
    EXPECT_EQ(rs.pairCount(), 2u);
}

TEST(RelationTest, TransitiveClosureChain)
{
    Relation r(5);
    r.add(0, 1);
    r.add(1, 2);
    r.add(2, 3);
    Relation plus = r.transitiveClosure();
    EXPECT_TRUE(plus.contains(0, 3));
    EXPECT_TRUE(plus.contains(1, 3));
    EXPECT_FALSE(plus.contains(3, 0));
    EXPECT_EQ(plus.pairCount(), 6u);
}

TEST(RelationTest, ClosureOfCycleIsReflexive)
{
    Relation r(3);
    r.add(0, 1);
    r.add(1, 0);
    Relation plus = r.transitiveClosure();
    EXPECT_TRUE(plus.contains(0, 0));
    EXPECT_FALSE(plus.irreflexive());
    EXPECT_FALSE(r.acyclic());
}

TEST(RelationTest, IdentityAndCartesian)
{
    EventSet s(4);
    s.insert(1);
    s.insert(2);
    Relation id = Relation::identity(s);
    EXPECT_TRUE(id.contains(1, 1));
    EXPECT_FALSE(id.contains(0, 0));
    EXPECT_EQ(id.pairCount(), 2u);

    EventSet t(4);
    t.insert(3);
    Relation cart = Relation::cartesian(s, t);
    EXPECT_TRUE(cart.contains(1, 3));
    EXPECT_TRUE(cart.contains(2, 3));
    EXPECT_EQ(cart.pairCount(), 2u);
}

TEST(RelationTest, InverseAndRestrict)
{
    Relation r(4);
    r.add(0, 1);
    r.add(2, 3);
    Relation inv = r.inverse();
    EXPECT_TRUE(inv.contains(1, 0));
    EXPECT_TRUE(inv.contains(3, 2));

    EventSet dom(4);
    dom.insert(0);
    EXPECT_EQ(r.restrictDomain(dom).pairCount(), 1u);
    EventSet rng(4);
    rng.insert(3);
    EXPECT_EQ(r.restrictRange(rng).pairCount(), 1u);
}

TEST(RelationTest, DomainAndRange)
{
    Relation r(5);
    r.add(0, 2);
    r.add(1, 2);
    EXPECT_EQ(r.domain().count(), 2u);
    EXPECT_EQ(r.range().count(), 1u);
    EXPECT_TRUE(r.range().contains(2));
}

TEST(RelationTest, FindCycleReturnsRealCycle)
{
    Relation r(6);
    r.add(0, 1);
    r.add(1, 2);
    r.add(2, 0);
    r.add(3, 4);
    auto cycle = r.findCycle();
    ASSERT_TRUE(cycle.has_value());
    // Every consecutive pair (and the wrap-around) must be an edge.
    for (std::size_t i = 0; i < cycle->size(); ++i) {
        EventId from = (*cycle)[i];
        EventId to = (*cycle)[(i + 1) % cycle->size()];
        EXPECT_TRUE(r.contains(from, to))
            << "missing edge " << from << "->" << to;
    }
}

TEST(RelationTest, FindCycleOnDagIsEmpty)
{
    Relation r(4);
    r.add(0, 1);
    r.add(0, 2);
    r.add(1, 3);
    r.add(2, 3);
    EXPECT_FALSE(r.findCycle().has_value());
    EXPECT_TRUE(r.acyclic());
}

TEST(RelationTest, OptionalAddsIdentity)
{
    Relation r(3);
    r.add(0, 1);
    Relation opt = r.optional();
    EXPECT_TRUE(opt.contains(2, 2));
    EXPECT_TRUE(opt.contains(0, 1));
}

TEST(RelationTest, EmptyShortCircuits)
{
    Relation r(100);
    EXPECT_TRUE(r.empty());
    r.add(99, 99);
    EXPECT_FALSE(r.empty());
    r.remove(99, 99);
    EXPECT_TRUE(r.empty());

    EventSet s(100);
    EXPECT_TRUE(s.empty());
    s.insert(99);
    EXPECT_FALSE(s.empty());
    s.erase(99);
    EXPECT_TRUE(s.empty());
}

TEST(RelationTest, ResetReusesStorage)
{
    Relation r(8);
    r.add(1, 2);
    r.reset(8);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r, Relation(8));
    // Shrinking / growing the universe both give the empty relation of
    // the new size.
    r.add(0, 0);
    r.reset(4);
    EXPECT_EQ(r, Relation(4));
    r.reset(130);
    EXPECT_EQ(r, Relation(130));
}

TEST(RelationTest, RestrictedEqualsIdentitySandwich)
{
    Relation r(70);
    r.add(0, 1);
    r.add(1, 69);
    r.add(65, 2);
    r.add(3, 3);
    EventSet dom(70), rng(70);
    dom.insert(1);
    dom.insert(65);
    dom.insert(3);
    rng.insert(69);
    rng.insert(2);
    Relation expected =
        Relation::identity(dom).seq(r).seq(Relation::identity(rng));
    EXPECT_EQ(r.restricted(dom, rng), expected);
    EXPECT_EQ(r.restricted(dom, rng),
              r.restrictDomain(dom).restrictRange(rng));
}

// ---------------------------------------------------------------------
// Property sweeps across universe sizes (crossing the word boundary).
// ---------------------------------------------------------------------

class RelationProperty : public ::testing::TestWithParam<std::size_t>
{
  protected:
    /** A deterministic pseudo-random relation over n events. */
    Relation
    randomRelation(std::size_t n, std::uint64_t seed) const
    {
        Relation r(n);
        std::uint64_t state = seed * 2654435761u + 1;
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if (state % 7 == 0)
                    r.add(a, b);
            }
        }
        return r;
    }
};

TEST_P(RelationProperty, UnionIsCommutativeAndIdempotent)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 1);
    Relation b = randomRelation(n, 2);
    EXPECT_EQ(a | b, b | a);
    EXPECT_EQ(a | a, a);
}

TEST_P(RelationProperty, IntersectionDistributesOverUnion)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 3);
    Relation b = randomRelation(n, 4);
    Relation c = randomRelation(n, 5);
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
}

TEST_P(RelationProperty, SeqAssociative)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 6);
    Relation b = randomRelation(n, 7);
    Relation c = randomRelation(n, 8);
    EXPECT_EQ(a.seq(b).seq(c), a.seq(b.seq(c)));
}

TEST_P(RelationProperty, SeqDistributesOverUnion)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 9);
    Relation b = randomRelation(n, 10);
    Relation c = randomRelation(n, 11);
    EXPECT_EQ(a.seq(b | c), a.seq(b) | a.seq(c));
}

TEST_P(RelationProperty, ClosureIsIdempotentAndContainsBase)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 12);
    Relation plus = a.transitiveClosure();
    EXPECT_EQ(plus.transitiveClosure(), plus);
    EXPECT_EQ(plus | a, plus);
    // Closure is transitively closed: plus;plus ⊆ plus.
    EXPECT_EQ(plus.seq(plus) | plus, plus);
}

TEST_P(RelationProperty, InverseIsInvolutive)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 13);
    EXPECT_EQ(a.inverse().inverse(), a);
}

TEST_P(RelationProperty, InverseReversesComposition)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 14);
    Relation b = randomRelation(n, 15);
    EXPECT_EQ(a.seq(b).inverse(), b.inverse().seq(a.inverse()));
}

TEST_P(RelationProperty, AcyclicAgreesWithFindCycle)
{
    std::size_t n = GetParam();
    for (std::uint64_t seed = 20; seed < 26; ++seed) {
        Relation a = randomRelation(n, seed);
        EXPECT_EQ(a.acyclic(), !a.findCycle().has_value());
    }
}

TEST_P(RelationProperty, RestrictedAgreesWithSequentialRestriction)
{
    std::size_t n = GetParam();
    for (std::uint64_t seed = 30; seed < 34; ++seed) {
        Relation a = randomRelation(n, seed);
        EventSet dom(n), rng(n);
        for (std::size_t i = 0; i < n; i += 2)
            dom.insert(static_cast<EventId>(i));
        for (std::size_t i = 0; i < n; i += 3)
            rng.insert(static_cast<EventId>(i));
        EXPECT_EQ(a.restricted(dom, rng),
                  a.restrictDomain(dom).restrictRange(rng));
    }
}

TEST_P(RelationProperty, DomainRangeConsistentWithPairs)
{
    std::size_t n = GetParam();
    Relation a = randomRelation(n, 16);
    EventSet dom(n), rng(n);
    for (auto [x, y] : a.pairs()) {
        dom.insert(x);
        rng.insert(y);
    }
    EXPECT_EQ(a.domain(), dom);
    EXPECT_EQ(a.range(), rng);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelationProperty,
                         ::testing::Values(1, 2, 7, 16, 63, 64, 65, 100));

} // namespace
} // namespace rex
