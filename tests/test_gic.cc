/**
 * @file
 * GIC model tests: the Figure 10 interrupt-handling state machine, SGI
 * routing, priorities, buffering of one extra pending instance, and both
 * EOImodes.
 */

#include <gtest/gtest.h>

#include "gic/cpu_interface.hh"
#include "gic/gic.hh"
#include "sem/exception.hh"

namespace rex {
namespace {

using gic::Gic;
using gic::IntState;
using gic::Redistributor;
using gic::kSpuriousIntid;

TEST(GicAutomaton, InactivePendActiveDeactivateCycle)
{
    Redistributor redist;
    EXPECT_EQ(redist.state(5), IntState::Inactive);
    EXPECT_FALSE(redist.irqPending());

    // source asserts interrupt -> Pending, delivered to the PE.
    redist.pend(5);
    EXPECT_EQ(redist.state(5), IntState::Pending);
    EXPECT_TRUE(redist.irqPending());

    // target acks by reading IAR -> Active, pending bit clears.
    EXPECT_EQ(redist.acknowledge(), 5u);
    EXPECT_EQ(redist.state(5), IntState::Active);
    EXPECT_FALSE(redist.irqPending());

    // target deactivates -> Inactive.
    redist.deactivate(5);
    EXPECT_EQ(redist.state(5), IntState::Inactive);
}

TEST(GicAutomaton, ActivePendingBuffersExactlyOneInstance)
{
    Redistributor redist;
    redist.pend(7);
    EXPECT_EQ(redist.acknowledge(), 7u);

    // Re-assert while active: buffered as Active&Pending.
    redist.pend(7);
    EXPECT_EQ(redist.state(7), IntState::ActivePending);

    // Further asserts collapse (only one instance buffered).
    redist.pend(7);
    EXPECT_EQ(redist.state(7), IntState::ActivePending);

    // While active, the buffered instance is not re-delivered.
    EXPECT_FALSE(redist.irqPending());

    // Priority drop alone still does not re-deliver (not deactivated).
    redist.priorityDrop(7);
    EXPECT_FALSE(redist.irqPending());

    // Deactivation re-pends immediately (s7.4) and, with the priority
    // dropped, the instance is deliverable again.
    redist.deactivate(7);
    EXPECT_EQ(redist.state(7), IntState::Pending);
    EXPECT_TRUE(redist.irqPending());
}

TEST(GicAutomaton, SoftwareChangesPendingState)
{
    Redistributor redist;
    redist.pend(3);
    redist.clearPending(3);
    EXPECT_EQ(redist.state(3), IntState::Inactive);

    redist.setPending(3);
    EXPECT_EQ(redist.state(3), IntState::Pending);
    EXPECT_EQ(redist.acknowledge(), 3u);
    redist.pend(3);
    redist.clearPending(3);
    EXPECT_EQ(redist.state(3), IntState::Active);
}

TEST(GicAutomaton, SpuriousWhenNothingPending)
{
    Redistributor redist;
    EXPECT_EQ(redist.acknowledge(), kSpuriousIntid);
}

TEST(GicPriorities, MaskBlocksDelivery)
{
    Redistributor redist;
    redist.setPriority(4, 0xB0);
    redist.setPriorityMask(0xA0);  // only priorities < 0xA0 deliver
    redist.pend(4);
    EXPECT_FALSE(redist.irqPending());
    EXPECT_EQ(redist.acknowledge(), kSpuriousIntid);

    redist.setPriorityMask(0xFF);
    EXPECT_TRUE(redist.irqPending());
    EXPECT_EQ(redist.acknowledge(), 4u);
}

TEST(GicPriorities, RunningPriorityPreemptsLowerOnly)
{
    Redistributor redist;
    redist.setPriority(1, 0x40);  // high priority
    redist.setPriority(2, 0x80);  // low priority

    redist.pend(2);
    EXPECT_EQ(redist.acknowledge(), 2u);
    EXPECT_EQ(redist.runningPriority(), 0x80);

    // A lower-priority interrupt cannot preempt...
    redist.setPriority(3, 0x90);
    redist.pend(3);
    EXPECT_FALSE(redist.irqPending());

    // ...but a higher-priority one can.
    redist.pend(1);
    EXPECT_TRUE(redist.irqPending());
    EXPECT_EQ(redist.acknowledge(), 1u);
    EXPECT_EQ(redist.runningPriority(), 0x40);

    // Priority drops unwind in acknowledge order.
    redist.priorityDrop(1);
    EXPECT_EQ(redist.runningPriority(), 0x80);
    redist.priorityDrop(2);
    EXPECT_EQ(redist.runningPriority(), gic::kIdlePriority);
}

TEST(GicPriorities, HighestPriorityDeliveredFirst)
{
    Redistributor redist;
    redist.setPriority(10, 0x80);
    redist.setPriority(11, 0x20);
    redist.pend(10);
    redist.pend(11);
    EXPECT_EQ(redist.highestPendingDeliverable(), 11u);
    EXPECT_EQ(redist.acknowledge(), 11u);
    // After deactivating, the lower-priority one delivers... but not
    // while 11 is active (running priority 0x20 masks 0x80).
    EXPECT_FALSE(redist.irqPending());
    redist.priorityDrop(11);
    redist.deactivate(11);
    EXPECT_EQ(redist.acknowledge(), 10u);
}

TEST(GicRouting, BroadcastSgiReachesAllButSender)
{
    Gic gic(4);
    sem::SgiRequest req = sem::decodeSgi1r(std::uint64_t{1} << 40);
    EXPECT_TRUE(req.broadcast);
    gic.sendSgi(req, 1);
    EXPECT_EQ(gic.redistributor(0).state(0), IntState::Pending);
    EXPECT_EQ(gic.redistributor(1).state(0), IntState::Inactive);
    EXPECT_EQ(gic.redistributor(2).state(0), IntState::Pending);
    EXPECT_EQ(gic.redistributor(3).state(0), IntState::Pending);
}

TEST(GicRouting, TargetListSgi)
{
    Gic gic(3);
    // Target list {0, 2}, INTID 5.
    std::uint64_t value = (std::uint64_t{5} << 24) | 0b101;
    gic.sendSgi(sem::decodeSgi1r(value), 1);
    EXPECT_EQ(gic.redistributor(0).state(5), IntState::Pending);
    EXPECT_EQ(gic.redistributor(1).state(5), IntState::Inactive);
    EXPECT_EQ(gic.redistributor(2).state(5), IntState::Pending);
}

TEST(GicCpuInterface, EoiMode0DropsAndDeactivates)
{
    Gic gic(1);
    gic::CpuInterface cif(gic, 0, /*eoi_mode1=*/false);
    gic.redistributor(0).pend(6);
    EXPECT_TRUE(cif.irqPending());
    EXPECT_EQ(cif.readIar(), 6u);
    cif.writeEoir(6);
    EXPECT_EQ(gic.redistributor(0).state(6), IntState::Inactive);
    EXPECT_EQ(gic.redistributor(0).runningPriority(), gic::kIdlePriority);
}

TEST(GicCpuInterface, EoiMode1SplitsDropAndDeactivate)
{
    Gic gic(1);
    gic::CpuInterface cif(gic, 0, /*eoi_mode1=*/true);
    gic.redistributor(0).pend(6);
    EXPECT_EQ(cif.readIar(), 6u);

    // EOIR only drops priority; the interrupt stays active.
    cif.writeEoir(6);
    EXPECT_EQ(gic.redistributor(0).state(6), IntState::Active);
    EXPECT_EQ(gic.redistributor(0).runningPriority(), gic::kIdlePriority);

    // Duplicate instances are masked until deactivation (s7.1).
    gic.redistributor(0).pend(6);
    EXPECT_FALSE(cif.irqPending());

    cif.writeDir(6);
    EXPECT_EQ(gic.redistributor(0).state(6), IntState::Pending);
    EXPECT_TRUE(cif.irqPending());
}

TEST(GicCpuInterface, PmrWrite)
{
    Gic gic(1);
    gic::CpuInterface cif(gic, 0, false);
    cif.writePmr(0x10);
    gic.redistributor(0).pend(2);  // default priority 0xA0 > mask 0x10
    EXPECT_FALSE(cif.irqPending());
}

TEST(GicSgiEncoding, DecodeFields)
{
    sem::SgiRequest req =
        sem::decodeSgi1r((std::uint64_t{9} << 24) | 0xFF00);
    EXPECT_EQ(req.intid, 9u);
    EXPECT_FALSE(req.broadcast);
    EXPECT_EQ(req.targetList, 0xFF00);
    EXPECT_EQ(req.targetMask(4, 0), 0u);  // targets 8..15 out of range
}

} // namespace
} // namespace rex
