/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef REX_BENCH_COMMON_HH
#define REX_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "rex/rex.hh"

namespace rex::bench {

/** Print the reproduction block for each named test. */
inline int
reproduce(const char *title, const std::vector<std::string> &names,
          harness::FigureOptions options = {})
{
    // Interrupted figure runs keep their JSONL records.
    engine::installFlushOnExitSignals();
    std::printf("%s\n%s\n\n", title,
                std::string(std::string(title).size(), '=').c_str());
    for (const std::string &name : names) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        std::fputs(harness::reproduceFigure(test, options).c_str(),
                   stdout);
        std::fputs("\n", stdout);
    }
    return 0;
}

} // namespace rex::bench

#endif // REX_BENCH_COMMON_HH
