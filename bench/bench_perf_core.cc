/**
 * @file
 * Performance microbenchmarks (google-benchmark) for the core engines:
 * relation closure, candidate enumeration, native model checking, cat
 * interpretation, and operational simulation. The native-vs-cat pair
 * quantifies the cost of interpretation (the paper's `repro` note about
 * the awkwardness of symbolic encodings: explicit enumeration keeps the
 * oracle fast).
 */

#include <benchmark/benchmark.h>

#include "catc/cache.hh"
#include "catc/exec.hh"
#include "rex/rex.hh"

namespace {

using namespace rex;

void
BM_RelationClosure(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    Relation r(n);
    std::uint64_t s = 12345;
    for (EventId a = 0; a < n; ++a) {
        for (EventId b = 0; b < n; ++b) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if (s % 5 == 0)
                r.add(a, b);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(r.transitiveClosure());
}
BENCHMARK(BM_RelationClosure)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_CandidateEnumeration(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    for (auto _ : state) {
        CandidateEnumerator enumerator(test);
        benchmark::DoNotOptimize(enumerator.count());
    }
}
BENCHMARK(BM_CandidateEnumeration);

void
BM_NativeModelCheck(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            checkTest(test, ModelParams::base(), true).observable);
}
BENCHMARK(BM_NativeModelCheck);

void
BM_NativeModelCheckFull(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    // No early exit: visits and checks every candidate.
    for (auto _ : state)
        benchmark::DoNotOptimize(
            checkTest(test, ModelParams::base(), false).candidates);
}
BENCHMARK(BM_NativeModelCheckFull);

void
BM_NativeModelCheckSharded(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    // Same check distributed over a worker pool; results are merged in
    // deterministic order, so the verdict is identical to the serial
    // path (the interesting number is the coordination overhead on a
    // combination space this small).
    engine::ThreadPool pool(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            checkTest(test, ModelParams::base(), false, true, &pool)
                .candidates);
}
BENCHMARK(BM_NativeModelCheckSharded);

void
BM_CatModelCheck(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    const cat::CatModel &model = cat::CatModel::shipped();
    // Pre-enumerate candidates once; measure interpretation only.
    std::vector<CandidateExecution> candidates;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        candidates.push_back(cand);
        return true;
    });
    for (auto _ : state) {
        for (const CandidateExecution &cand : candidates) {
            benchmark::DoNotOptimize(
                model.check(cand, ModelParams::base()).consistent);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  candidates.size()));
}
BENCHMARK(BM_CatModelCheck);

void
BM_NativeModelPerCandidate(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    std::vector<CandidateExecution> candidates;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        candidates.push_back(cand);
        return true;
    });
    for (auto _ : state) {
        for (const CandidateExecution &cand : candidates) {
            benchmark::DoNotOptimize(
                checkConsistent(cand, ModelParams::base()).consistent);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  candidates.size()));
}
BENCHMARK(BM_NativeModelPerCandidate);

/** Coherent staged candidates of @p test (deep copies) with their
 *  combination indices, for per-candidate check benchmarks. */
std::vector<std::pair<CandidateExecution, std::uint64_t>>
stagedCandidates(const LitmusTest &test)
{
    std::vector<std::pair<CandidateExecution, std::uint64_t>> out;
    CandidateEnumerator enumerator(test);
    enumerator.forEachStaged(
        [&](CandidateExecution &cand,
            const CandidateEnumerator::StagedInfo &info) {
            if (info.coherent)
                out.emplace_back(cand, info.comboIndex);
            return true;
        });
    return out;
}

void
BM_StagedCheckSweep(benchmark::State &state)
{
    // The PR 2 staged interpreter, isolated per candidate: skeleton
    // recomputed once per trace combination, checkConsistent on every
    // coherent candidate. The compiled sweep below runs the identical
    // workload through the catc fold + dispatch loop; their ratio is
    // the per-candidate win of compilation.
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    const ModelParams params = ModelParams::base();
    const auto candidates = stagedCandidates(test);
    for (auto _ : state) {
        std::optional<SkeletonRelations> skeleton;
        std::uint64_t combo = 0;
        for (const auto &[cand, comboIndex] : candidates) {
            if (!skeleton || combo != comboIndex) {
                skeleton = computeSkeleton(cand, params);
                combo = comboIndex;
            }
            benchmark::DoNotOptimize(
                checkConsistent(cand, params, *skeleton, true)
                    .consistent);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  candidates.size()));
}
BENCHMARK(BM_StagedCheckSweep);

void
BM_CompiledCheckSweep(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("MP.EL1+dmb.sy+dataesrsvc");
    const ModelParams params = ModelParams::base();
    const auto candidates = stagedCandidates(test);
    // Compiled once per (variant, revision) — outside the timed loop,
    // exactly like the checker's per-check program fetch.
    const auto program = catc::nativeStaged(params);
    std::optional<catc::FoldedProgram> folded;
    for (auto _ : state) {
        std::uint64_t combo = ~std::uint64_t{0};
        for (const auto &[cand, comboIndex] : candidates) {
            if (!folded) {
                folded.emplace(*program, cand);
                combo = comboIndex;
            } else if (combo != comboIndex) {
                folded->refold(cand);
                combo = comboIndex;
            }
            benchmark::DoNotOptimize(folded->runFast(cand).consistent);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  candidates.size()));
}
BENCHMARK(BM_CompiledCheckSweep);

void
BM_OperationalRun(benchmark::State &state)
{
    const LitmusTest &test =
        TestRegistry::instance().get("SB+dmb.sy+eret");
    op::Runner runner(op::CoreProfile::cortexA73(), 99);
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(test, 100).observed);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 100));
}
BENCHMARK(BM_OperationalRun);

void
BM_OperationalExplore(benchmark::State &state)
{
    const LitmusTest &test = TestRegistry::instance().get("SB+pos");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            op::explore(test, op::CoreProfile::maxRelaxed())
                .outcomes.size());
    }
}
BENCHMARK(BM_OperationalExplore);

void
BM_Assembler(benchmark::State &state)
{
    const std::string text =
        "LDR X0,[X1]\nMRS X4,ESR_EL1\nEOR X5,X0,X0\nADD X5,X4,X5\n"
        "MSR ESR_EL1,X5\nSVC #0\n";
    for (auto _ : state)
        benchmark::DoNotOptimize(isa::assemble(text).code.size());
}
BENCHMARK(BM_Assembler);

} // namespace

BENCHMARK_MAIN();
