/**
 * @file
 * §3.2.2: MP+dmb.sy+svc — load-load reordering across a context-
 * synchronising SVC+ERET pair is architecturally allowed (by analogy
 * with MP+dmb.sy+isb) but, like the paper's hardware results, is
 * observed only on the A73-like profile; the RPi-like profiles never
 * reorder loads.
 */

#include "bench_common.hh"

int
main()
{
    return rex::bench::reproduce(
        "S3.2.2: MP+dmb.sy+svc, observed only on the A73-like profile",
        {"MP+dmb.sy+svc", "MP+dmb.sy+isb"});
}
