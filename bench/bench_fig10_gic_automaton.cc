/**
 * @file
 * Figure 10: the GIC interrupt-handling state machine for one PE and one
 * INTID, specialised to edge-triggered behaviour. Drives the model
 * through every transition of the figure and prints the trace, then
 * contrasts the two EOImodes.
 */

#include <cstdio>

#include "rex/rex.hh"

namespace {

void
show(const rex::gic::Redistributor &redist, std::uint32_t intid,
     const char *action)
{
    std::printf("  %-42s -> %-15s (pending bit: %d)\n", action,
                rex::gic::intStateName(redist.state(intid)),
                redist.irqPending());
}

} // namespace

int
main()
{
    using namespace rex::gic;

    std::printf("Figure 10: GIC interrupt handling state machine\n\n");

    {
        Redistributor redist;
        const std::uint32_t intid = 1;
        std::printf("Basic lifecycle (one instance):\n");
        show(redist, intid, "initial");
        redist.pend(intid);
        show(redist, intid, "source asserts interrupt (SGI1R write)");
        redist.acknowledge();
        show(redist, intid, "target acks (IAR read)");
        redist.priorityDrop(intid);
        show(redist, intid, "priority drop (EOIR write)");
        redist.deactivate(intid);
        show(redist, intid, "deactivate (DIR write)");
    }

    {
        Redistributor redist;
        const std::uint32_t intid = 1;
        std::printf("\nRe-pend while active (one instance buffered):\n");
        redist.pend(intid);
        redist.acknowledge();
        show(redist, intid, "acknowledged");
        redist.pend(intid);
        show(redist, intid, "re-pend while active");
        redist.pend(intid);
        show(redist, intid, "second re-pend (collapses)");
        redist.priorityDrop(intid);
        redist.deactivate(intid);
        show(redist, intid, "deactivate: buffered instance re-pends");
    }

    {
        std::printf("\nEOImode=0: EOIR drops priority and deactivates:\n");
        Gic gic(1);
        CpuInterface cif(gic, 0, /*eoi_mode1=*/false);
        gic.redistributor(0).pend(2);
        cif.readIar();
        cif.writeEoir(2);
        show(gic.redistributor(0), 2, "EOIR write");
    }

    {
        std::printf("\nEOImode=1: EOIR only drops; DIR deactivates "
                    "(Linux's split handling, S7.1):\n");
        Gic gic(1);
        CpuInterface cif(gic, 0, /*eoi_mode1=*/true);
        gic.redistributor(0).pend(2);
        cif.readIar();
        cif.writeEoir(2);
        show(gic.redistributor(0), 2, "EOIR write (still active)");
        cif.writeDir(2);
        show(gic.redistributor(0), 2, "DIR write");
    }

    return 0;
}
