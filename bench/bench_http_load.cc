/**
 * @file
 * HTTP serving-path benchmarks for rexd, driven against an EXTERNAL
 * daemon: set REXD_HOST / REXD_PORT (scripts/http_bench.sh does) and
 * each benchmark measures one request round-trip on the wire. Without
 * the env vars every benchmark skips, so a bare run is harmless.
 *
 * The three benchmarks cover the traffic classes the event loop is
 * optimised for:
 *
 *   BM_Healthz       loop-answered probe, keep-alive — pure event-loop
 *                    overhead, no engine, no handler thread.
 *   BM_CheckCacheHit POST /check answered from the verdict cache —
 *                    the CDN-miss-but-verdict-cached steady state.
 *   BM_Check304      conditional GET /check/<builtin> revalidation —
 *                    the cheapest possible answer (skipped when the
 *                    server predates ETags, e.g. the PR6 baseline).
 *
 * The client asks for keep-alive but transparently reconnects when the
 * server closes per-request (the pre-event-loop daemon), so the same
 * binary benches both generations: the measured gap between those two
 * behaviours IS the keep-alive win.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "litmus/registry.hh"
#include "server/client.hh"

namespace {

using namespace rex;

const char *kBuiltin = "SB+pos";

/** The benched daemon's address, or empty host when unconfigured. */
std::pair<std::string, std::uint16_t>
targetFromEnv()
{
    const char *host = std::getenv("REXD_HOST");
    const char *port = std::getenv("REXD_PORT");
    if (!host || !*host || !port || !*port)
        return {"", 0};
    return {host, static_cast<std::uint16_t>(std::atoi(port))};
}

std::unique_ptr<server::Client>
makeClient(benchmark::State &state)
{
    auto [host, port] = targetFromEnv();
    if (host.empty()) {
        state.SkipWithError("set REXD_HOST and REXD_PORT "
                            "(see scripts/http_bench.sh)");
        return nullptr;
    }
    auto client = std::make_unique<server::Client>(host, port);
    client->setKeepAlive(true);
    return client;
}

void
BM_Healthz(benchmark::State &state)
{
    auto client = makeClient(state);
    if (!client)
        return;
    for (auto _ : state) {
        server::ClientResponse r = client->get("/healthz");
        if (r.status != 200) {
            state.SkipWithError("healthz did not answer 200");
            return;
        }
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Healthz)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Healthz)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(8)
    ->UseRealTime();

void
BM_CheckCacheHit(benchmark::State &state)
{
    auto client = makeClient(state);
    if (!client)
        return;
    const std::string &text =
        TestRegistry::instance().sourceText(kBuiltin);
    // Warm the verdict cache so the measured loop serves pure hits.
    server::ClientResponse warm = client->check(text, {"base"});
    if (warm.status != 200) {
        state.SkipWithError("warm-up check failed");
        return;
    }
    for (auto _ : state) {
        server::ClientResponse r = client->check(text, {"base"});
        if (r.status != 200) {
            state.SkipWithError("cache-hit check did not answer 200");
            return;
        }
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckCacheHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CheckCacheHit)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(8)
    ->UseRealTime();

void
BM_Check304(benchmark::State &state)
{
    auto client = makeClient(state);
    if (!client)
        return;
    const std::string target =
        std::string("/check/") + kBuiltin + "?variants=base";
    server::ClientResponse warm = client->get(target);
    if (warm.status != 200) {
        state.SkipWithError("GET /check/<builtin> unavailable "
                            "(pre-event-loop server?)");
        return;
    }
    const std::string etag = warm.headers["etag"];
    if (etag.empty()) {
        state.SkipWithError("server sent no ETag "
                            "(pre-event-loop server?)");
        return;
    }
    for (auto _ : state) {
        server::ClientResponse r =
            client->get(target, {{"If-None-Match", etag}});
        if (r.status != 304) {
            state.SkipWithError("revalidation did not answer 304");
            return;
        }
        benchmark::DoNotOptimize(r.status);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Check304)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Check304)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(8)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
