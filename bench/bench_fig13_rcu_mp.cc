/**
 * @file
 * Figure 13: RCU-MP — the key RCU test: two writes separated by the
 * generation of an SGI (the synchronize_rcu system-wide barrier) against
 * a read-critical-section implemented by interrupt masking. Allowed as
 * written; forbidden once the DSB ST is placed between the data write
 * and the SGI. Also reproduces the Verona asymmetric-lock scenario
 * (§7.3), which relies on interrupt *precision* rather than masking.
 */

#include "bench_common.hh"

int
main()
{
    rex::harness::FigureOptions options;
    options.variants = {rex::ModelParams::base()};
    return rex::bench::reproduce(
        "Figure 13: RCU and the Verona asymmetric lock",
        {"RCU-MP", "RCU-MP+dsb.st", "VERONA-asymlock",
         "VERONA-asymlock-nodsb"},
        options);
}
