/**
 * @file
 * Figure 8: different exception kinds behave differently — a
 * translation fault gets the FEAT_ETS2 barrier from program-order-
 * earlier instances (MP+dmb.sy+fault, forbidden; allowed when ETS2 is
 * disabled), while an asynchronous interrupt does not (MP+dmb.sy+int,
 * allowed).
 */

#include "bench_common.hh"

int
main()
{
    rex::harness::FigureOptions options;
    options.variants = {
        rex::ModelParams::base(),
        rex::ModelParams::byName("noETS2"),
    };
    return rex::bench::reproduce(
        "Figure 8: translation faults (ETS2) vs asynchronous interrupts",
        {"MP+dmb.sy+fault", "MP+dmb.sy+fault-addr", "MP+dmb.sy+int"},
        options);
}
