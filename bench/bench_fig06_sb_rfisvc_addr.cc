/**
 * @file
 * Figure 6: SB+dmb.sy+rfisvc-addr — a store forwards to a read inside
 * the (non-speculative) exception handler. Expected allowed (and
 * observed on all device profiles); forbidden under SEA_W.
 */

#include "bench_common.hh"

int
main()
{
    return rex::bench::reproduce(
        "Figure 6: forwarding into a non-speculative handler",
        {"SB+dmb.sy+rfisvc-addr"});
}
