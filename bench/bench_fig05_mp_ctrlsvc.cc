/**
 * @file
 * Figure 5: MP+dmb.sy+ctrlsvc — context-synchronising exception entry
 * is never speculative. Expected: forbidden everywhere except under
 * FEAT_ExS with EIS=0; 0 observations on every device profile.
 */

#include "bench_common.hh"

int
main()
{
    return rex::bench::reproduce(
        "Figure 5: exception entry is not taken speculatively",
        {"MP+dmb.sy+ctrlsvc"});
}
