/**
 * @file
 * The whole-suite matrix: every built-in litmus test against every
 * paper variant of the model, checked against the expected verdicts.
 * This is the repository's equivalent of the paper's statement that
 * "for all the (non-IPI) tests presented in this paper, Isla, the
 * architectural intent, and the results of hardware testing are
 * consistent".
 *
 * The (test × variant) matrix runs on the batch engine: verdict jobs
 * are sharded across worker threads, memoized in the on-disk verdict
 * cache (default `.rex-cache/`, so a second run skips every proved
 * verdict), and logged one-JSONL-record-per-job to the results file.
 * Table output on stdout is byte-identical for every --jobs value;
 * engine diagnostics go to stderr.
 *
 * Usage:
 *   bench_suite_matrix [--jobs N] [--results PATH] [--cache-dir DIR]
 *                      [--no-cache] [--isolate N]
 *
 * Defaults: --jobs from REX_JOBS (else hardware concurrency), results
 * to suite_matrix.jsonl, cache under .rex-cache/.
 *
 * --isolate N runs each cache-missing check in one of N supervised
 * worker processes (engine/supervisor.hh): a crash in one test's
 * enumeration becomes a CrashedWorker record instead of killing the
 * whole matrix run. Verdicts are identical either way.
 */

#include <cstdio>
#include <cstring>

#include "rex/rex.hh"

int
main(int argc, char **argv)
{
    using namespace rex;

    // An interrupted matrix run keeps the verdict records proved so far.
    engine::installFlushOnExitSignals();
    // A fatal signal names the test/variant/stage it hit on stderr.
    engine::installCrashAttributionHandler();

    engine::EngineConfig config = engine::EngineConfig::fromEnv();
    if (config.resultsPath.empty())
        config.resultsPath = "suite_matrix.jsonl";
    if (config.cacheDir.empty())
        config.cacheDir = ".rex-cache";

    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
            config.jobs =
                static_cast<unsigned>(std::strtoul(argv[++arg], nullptr,
                                                   10));
        } else if (std::strcmp(argv[arg], "--results") == 0 &&
                   arg + 1 < argc) {
            config.resultsPath = argv[++arg];
        } else if (std::strcmp(argv[arg], "--cache-dir") == 0 &&
                   arg + 1 < argc) {
            config.cacheDir = argv[++arg];
        } else if (std::strcmp(argv[arg], "--no-cache") == 0) {
            config.cacheEnabled = false;
            config.cacheDir.clear();
        } else if (std::strcmp(argv[arg], "--isolate") == 0 &&
                   arg + 1 < argc) {
            config.workers =
                static_cast<unsigned>(std::strtoul(argv[++arg], nullptr,
                                                   10));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--results PATH] "
                         "[--cache-dir DIR] [--no-cache] [--isolate N]\n",
                         argv[0]);
            return 2;
        }
    }

    engine::Engine engine(config);
    const TestRegistry &registry = TestRegistry::instance();
    for (const char *suite :
         {"core", "exceptions", "sea", "gic", "generated"}) {
        std::printf("=== suite: %s ===\n", suite);
        std::fputs(
            harness::suiteMatrix(registry.suite(suite), engine).c_str(),
            stdout);
        std::printf("\n");
    }

    std::fprintf(stderr,
                 "engine: %u jobs, %llu cache hits, %llu misses, "
                 "%llu records -> %s\n",
                 engine.jobs(),
                 static_cast<unsigned long long>(engine.cache().hits()),
                 static_cast<unsigned long long>(engine.cache().misses()),
                 static_cast<unsigned long long>(
                     engine.results().records()),
                 engine.results().enabled()
                     ? engine.results().path().c_str()
                     : "(no results file)");
    return 0;
}
