/**
 * @file
 * The whole-suite matrix: every built-in litmus test against every
 * paper variant of the model, checked against the expected verdicts.
 * This is the repository's equivalent of the paper's statement that
 * "for all the (non-IPI) tests presented in this paper, Isla, the
 * architectural intent, and the results of hardware testing are
 * consistent".
 */

#include <cstdio>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;
    const TestRegistry &registry = TestRegistry::instance();
    for (const char *suite : {"core", "exceptions", "sea", "gic"}) {
        std::printf("=== suite: %s ===\n", suite);
        std::fputs(
            harness::suiteMatrix(registry.suite(suite)).c_str(), stdout);
        std::printf("\n");
    }
    return 0;
}
