/**
 * @file
 * Figure 7: system registers and context synchronisation — a dependent
 * write to ESR composes with the SVC's context synchronisation
 * (MP.EL1+dmb.sy+dataesrsvc, forbidden), and a dependent write to the
 * self-synchronising ELR feeds the ERET (MP+dmb.sy+ctrlelr, forbidden).
 * Includes the contrast test with an independent ESR write (allowed)
 * and the TPIDR analogue (§3.2.5).
 */

#include "bench_common.hh"

int
main()
{
    return rex::bench::reproduce(
        "Figure 7: system-register dependencies and context sync",
        {"MP.EL1+dmb.sy+dataesrsvc", "MP+dmb.sy+ctrlelr",
         "MP+dmb.sy+msresr-nodep", "MP.EL1+dmb.sy+datatpidrsvc"});
}
