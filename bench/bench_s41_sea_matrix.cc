/**
 * @file
 * §4.1: the synchronous-external-abort strengthening matrix. Under
 * SEA_R, load-buffering (LB+pos) and MP+dmb.sy+isb become forbidden;
 * under SEA_W, write-write reordering (MP+po+addr) becomes forbidden;
 * read-read reordering survives every variant (§4.2 discusses why
 * ruling out LB matters for programming-language models).
 *
 * The 8×4 (test × variant) matrix runs as independent verdict jobs on
 * the batch engine (--jobs N / REX_JOBS; verdicts memoized under
 * .rex-cache/); cells are reassembled in fixed order, so stdout is
 * byte-identical for every job count.
 */

#include <cstdio>
#include <cstring>

#include "rex/rex.hh"

int
main(int argc, char **argv)
{
    using namespace rex;

    engine::EngineConfig config = engine::EngineConfig::fromEnv();
    if (config.cacheDir.empty())
        config.cacheDir = ".rex-cache";
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
            config.jobs =
                static_cast<unsigned>(std::strtoul(argv[++arg], nullptr,
                                                   10));
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
            return 2;
        }
    }
    engine::Engine engine(config);

    std::printf("S4.1: behaviour under synchronous external aborts\n\n");

    const std::vector<std::string> names{
        "LB+pos", "MP+dmb.sy+isb", "MP+po+addr", "MP+po+po-rr",
        "LB+svc+po", "S+po+data", "SB+sea+isb", "LB+wb-base+po"};
    const std::vector<std::string> variants{"base", "SEA_R", "SEA_W",
                                            "SEA_RW"};

    std::vector<char> cells = engine.map(
        names.size() * variants.size(), [&](std::size_t i) -> char {
            const LitmusTest &test = TestRegistry::instance().get(
                names[i / variants.size()]);
            const ModelParams params =
                ModelParams::byName(variants[i % variants.size()]);
            return engine.isAllowed(test, params) ? 'A' : 'F';
        });

    harness::Table table;
    table.header({"test", "base", "SEA_R", "SEA_W", "SEA_RW"});
    for (std::size_t t = 0; t < names.size(); ++t) {
        std::vector<std::string> row{names[t]};
        for (std::size_t v = 0; v < variants.size(); ++v)
            row.push_back(
                std::string(1, cells[t * variants.size() + v]));
        table.row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf(
        "\nSEA_R rules out load buffering entirely, avoiding the\n"
        "out-of-thin-air problem for language-level models (S4.2).\n");
    return 0;
}
