/**
 * @file
 * §4.1: the synchronous-external-abort strengthening matrix. Under
 * SEA_R, load-buffering (LB+pos) and MP+dmb.sy+isb become forbidden;
 * under SEA_W, write-write reordering (MP+po+addr) becomes forbidden;
 * read-read reordering survives every variant (§4.2 discusses why
 * ruling out LB matters for programming-language models).
 */

#include <cstdio>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;

    std::printf("S4.1: behaviour under synchronous external aborts\n\n");

    harness::Table table;
    table.header({"test", "base", "SEA_R", "SEA_W", "SEA_RW"});
    for (const char *name :
            {"LB+pos", "MP+dmb.sy+isb", "MP+po+addr", "MP+po+po-rr",
             "LB+svc+po", "S+po+data", "SB+sea+isb", "LB+wb-base+po"}) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        std::vector<std::string> row{name};
        for (const char *variant : {"base", "SEA_R", "SEA_W", "SEA_RW"}) {
            bool allowed =
                isAllowed(test, ModelParams::byName(variant));
            row.push_back(allowed ? "A" : "F");
        }
        table.row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf(
        "\nSEA_R rules out load buffering entirely, avoiding the\n"
        "out-of-thin-air problem for language-level models (S4.2).\n");
    return 0;
}
