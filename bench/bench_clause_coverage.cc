/**
 * @file
 * Model-coverage analysis: across every forbidden outcome in the litmus
 * library, which clause families of the Figure 9 model contribute edges
 * to the forbidding cycles? A clause family that never appears in any
 * cycle would be untested by the suite; this bench shows every family
 * earns its keep (and quantifies how often).
 */

#include <cstdio>
#include <map>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;

    std::map<std::string, std::size_t> edge_hits;
    std::size_t cycles = 0;
    std::size_t atomic_violations = 0;

    for (const LitmusTest *test : TestRegistry::instance().all()) {
        CandidateEnumerator enumerator(*test);
        enumerator.forEach([&](CandidateExecution &cand) {
            if (!condHolds(cand, test->finalCond))
                return true;
            ModelResult result =
                checkConsistent(cand, ModelParams::base());
            if (result.consistent)
                return true;
            if (result.failedAxiom == "atomic") {
                // The rmw (aob) machinery is exercised through the
                // atomic axiom rather than ob cycles.
                ++atomic_violations;
                return true;
            }
            if (result.failedAxiom != "external" || !result.cycle)
                return true;
            ++cycles;
            ModelRelations rels =
                computeRelations(cand, ModelParams::base());
            const auto &cycle = *result.cycle;
            for (std::size_t i = 0; i < cycle.size(); ++i) {
                EventId from = cycle[i];
                EventId to = cycle[(i + 1) % cycle.size()];
                auto hit = [&](const char *name, const Relation &rel) {
                    if (rel.contains(from, to))
                        ++edge_hits[name];
                };
                hit("obs", rels.obs);
                hit("dob", rels.dob);
                hit("aob", rels.aob);
                hit("bob", rels.bob);
                hit("ctxob", rels.ctxob);
                hit("asyncob", rels.asyncob);
                hit("ets2", rels.ets2);
                hit("gicob", rels.gicob);
            }
            return true;
        });
    }

    std::printf("Clause coverage over the litmus library: edges of\n"
                "forbidding cycles, classified by clause family\n\n");
    harness::Table table;
    table.header({"clause family", "cycle edges"});
    for (const char *name : {"obs", "dob", "aob", "bob", "ctxob",
                             "asyncob", "ets2", "gicob"}) {
        auto it = edge_hits.find(name);
        table.row({name, std::to_string(
            it == edge_hits.end() ? 0 : it->second)});
    }
    table.row({"atomic axiom", std::to_string(atomic_violations)});
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n%zu forbidding ob-cycles analysed (an edge may belong "
                "to several families,\nso columns overlap); the rmw "
                "machinery additionally surfaces through the\natomic "
                "axiom (%zu violations).\n", cycles, atomic_violations);

    bool all_covered = atomic_violations > 0;  // rmw/aob coverage
    for (const char *name : {"obs", "dob", "bob", "ctxob",
                             "asyncob", "ets2", "gicob"}) {
        if (!edge_hits.count(name)) {
            std::printf("WARNING: clause family %s never used!\n", name);
            all_covered = false;
        }
    }
    return all_covered ? 0 : 1;
}
