/**
 * @file
 * Figure 9: the axiomatic model itself. Regenerated as an executable
 * artefact: the shipped models/aarch64-exceptions.cat is evaluated by
 * the cat interpreter against every candidate execution of every
 * built-in litmus test, under every paper variant, and must agree with
 * the native C++ transcription of the model on each one.
 */

#include <cstdio>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;

    const cat::CatModel &model = cat::CatModel::shipped();
    std::printf("Figure 9: '%s' (models/aarch64-exceptions.cat)\n\n",
                model.name().c_str());

    harness::Table table;
    table.header({"test", "candidates", "agree"});

    std::size_t total_candidates = 0;
    std::size_t disagreements = 0;
    for (const LitmusTest *test : TestRegistry::instance().all()) {
        std::size_t candidates = 0;
        bool agree = true;
        CandidateEnumerator enumerator(*test);
        enumerator.forEach([&](CandidateExecution &cand) {
            ++candidates;
            for (const ModelParams &params :
                    ModelParams::paperVariants()) {
                bool native = checkConsistent(cand, params).consistent;
                bool interpreted = model.check(cand, params).consistent;
                if (native != interpreted) {
                    agree = false;
                    ++disagreements;
                }
            }
            return true;
        });
        total_candidates += candidates;
        table.row({test->name, std::to_string(candidates),
                   agree ? "yes" : "NO"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n%zu candidate executions checked under %zu variants: "
                "%zu disagreements\n",
                total_candidates, ModelParams::paperVariants().size(),
                disagreements);
    return disagreements == 0 ? 0 : 1;
}
