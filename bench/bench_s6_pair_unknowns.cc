/**
 * @file
 * §6: the challenge of defining precision. For instructions with
 * multiple single-copy-atomic writes (store-pairs), a fault on one
 * element leaves the other element's location architecturally UNKNOWN —
 * observable by the handler and by racy readers. This bench regenerates
 * that discussion concretely: the partial-fault STP test's consistent
 * final states, with the checker's UNKNOWN-side-effect flag.
 */

#include <cstdio>

#include "rex/rex.hh"

namespace {

void
show(const char *name)
{
    using namespace rex;
    const LitmusTest &test = TestRegistry::instance().get(name);
    CheckResult result = checkTest(test, ModelParams::base());
    std::printf("%s\n  %s\n  verdict: %s   (%zu candidates, "
                "%zu consistent, %zu flagged UNKNOWN-side-effects)\n\n",
                test.name.c_str(), test.description.c_str(),
                result.observable ? "Allowed" : "Forbidden",
                result.candidates, result.consistent,
                result.unknownSideEffects);
}

} // namespace

int
main()
{
    std::printf("S6: precision and UNKNOWN side effects of partially-"
                "faulting pair accesses\n\n");
    show("STP+pair-unordered");
    show("STP+partial-fault-racy-read");
    show("LDP+pair-mp");
    std::printf(
        "The paper's point (s6): a general definition of precision must\n"
        "account for these observable side effects; our models flag the\n"
        "affected candidates rather than assigning them semantics.\n");
    return 0;
}
