/**
 * @file
 * Ablation: what each clause of the Figure 9 model buys. Variant cat
 * models with one clause knocked out are run (through the interpreter)
 * over representative tests; the flipped verdicts show exactly which
 * phenomenon each clause forbids:
 *
 *  - drop `speculative;[MSR|CSE]` from ctxob  -> ctrl-into-SVC leaks
 *  - drop `[MSR];po;[CSE]` from ctxob         -> dependent sysreg
 *                                                writes stop composing
 *  - drop `[CSE];po`                          -> everything after an
 *                                                exception floats
 *  - drop asyncob                             -> interrupts speculate
 *  - drop the interrupt witness (gicob)       -> SGI delivery unmoored
 */

#include <cstdio>
#include <string>

#include "rex/rex.hh"

namespace {

using namespace rex;

/** The Figure 9 model with named lines removable. */
std::string
modelSource(bool spec_cse, bool msr_cse, bool cse_po, bool asyncob,
            bool gic_witness)
{
    std::string s = R"("ablation"
include "cos.cat"
include "arm-common.cat"
let speculative = ctrl | addr; po
let CSE = ISB | TE | ERET | TakeInterrupt
let ASYNC = TakeInterrupt
let obs = rfe | fr | co
let dob = addr | data | speculative; [W] | speculative; [ISB]
  | (addr | data); rfi
let aob = rmw | [range(rmw)]; rfi; [A | Q]
let bob = [R]; po; [dmbld] | [W]; po; [dmbst] | [dmbst]; po; [W]
  | [dmbld]; po; [R | W] | [L]; po; [A] | [A | Q]; po; [R | W]
  | [R | W]; po; [L] | [dsb]; po
)";
    s += "let ctxob = 0\n";
    if (spec_cse)
        s += "let ctxob1 = ctxob | speculative; [MSR | CSE]\n";
    else
        s += "let ctxob1 = ctxob\n";
    if (msr_cse)
        s += "let ctxob2 = ctxob1 | [MSR]; po; [CSE]\n";
    else
        s += "let ctxob2 = ctxob1\n";
    if (cse_po)
        s += "let ctxob3 = ctxob2 | [CSE]; po\n";
    else
        s += "let ctxob3 = ctxob2\n";
    if (asyncob)
        s += "let asyncob = speculative; [ASYNC] | [ASYNC]; po\n";
    else
        s += "let asyncob = 0\n";
    s += "let ets2 = po; [TF]\n";
    if (gic_witness) {
        s += "let gicob = interrupt | iio^-1; po; [dsb] "
             "| [dsb]; po; iio\n";
    } else {
        s += "let gicob = iio^-1; po; [dsb] | [dsb]; po; iio\n";
    }
    s += R"(
let ob = (obs | dob | aob | bob | ctxob3 | asyncob | ets2 | gicob)+
acyclic po-loc | fr | co | rf as internal
irreflexive ob as external
empty rmw & (fre; coe) as atomic
)";
    return s;
}

bool
allowedUnder(const LitmusTest &test, const cat::CatModel &model)
{
    bool observable = false;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        if (!condHolds(cand, test.finalCond))
            return true;
        if (model.check(cand, ModelParams::base()).consistent) {
            observable = true;
            return false;
        }
        return true;
    });
    return observable;
}

} // namespace

int
main()
{
    struct Variant {
        const char *name;
        cat::CatModel model;
    };
    std::string dir = cat::modelDir();
    std::vector<Variant> variants;
    variants.push_back({"full",
        cat::CatModel::fromSource(
            modelSource(true, true, true, true, true), dir)});
    variants.push_back({"-spec;CSE",
        cat::CatModel::fromSource(
            modelSource(false, true, true, true, true), dir)});
    variants.push_back({"-MSR;po;CSE",
        cat::CatModel::fromSource(
            modelSource(true, false, true, true, true), dir)});
    variants.push_back({"-CSE;po",
        cat::CatModel::fromSource(
            modelSource(true, true, false, true, true), dir)});
    variants.push_back({"-asyncob",
        cat::CatModel::fromSource(
            modelSource(true, true, true, false, true), dir)});
    variants.push_back({"-interrupt",
        cat::CatModel::fromSource(
            modelSource(true, true, true, true, false), dir)});

    const char *tests[] = {
        "MP+dmb.sy+ctrlsvc",         // needs speculative;[CSE]
        "MP.EL1+dmb.sy+dataesrsvc",  // needs [MSR];po;[CSE]
        "MP+dmb.sy+ctrlelr",         // needs both MSR and CSE clauses
        "MP+dmb.sy+fault",           // needs ets2 + [CSE];po
        "LB+ctrlint+data",           // needs asyncob
        "MPviaSGI+dsb.st",           // needs the interrupt witness
        "RCU-MP+dsb.st",             // needs witness + asyncob
    };

    std::printf("Ablation: Figure 9 clause -> verdict flips "
                "(A = allowed, F = forbidden; intent in brackets)\n\n");
    rex::harness::Table table;
    std::vector<std::string> header = {"test"};
    for (const Variant &variant : variants)
        header.push_back(variant.name);
    header.push_back("[intent]");
    table.header(header);

    for (const char *name : tests) {
        const rex::LitmusTest &test =
            rex::TestRegistry::instance().get(name);
        std::vector<std::string> row = {name};
        for (const Variant &variant : variants)
            row.push_back(allowedUnder(test, variant.model) ? "A" : "F");
        row.push_back(test.expectedAllowed ? "A" : "F");
        table.row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nEach knocked-out clause flips exactly the phenomena "
                "it exists to forbid.\n");
    return 0;
}
