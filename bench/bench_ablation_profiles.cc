/**
 * @file
 * Ablation: which microarchitectural reordering capability unlocks
 * which relaxed behaviour. Starting from the in-order-with-store-buffer
 * baseline, each knob of the operational simulator is enabled alone and
 * representative tests are exhaustively explored. This explains the
 * paper's device table: store buffering (all devices) suffices for the
 * Figure 4/6 shapes, while load-load reordering (A73 only) is what
 * makes MP+dmb.sy+svc observable.
 */

#include <cstdio>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;

    struct Knob {
        const char *name;
        op::CoreProfile profile;
    };
    std::vector<Knob> knobs;
    {
        op::CoreProfile base = op::CoreProfile::cortexA53();
        base.name = "store-buffer only";
        knobs.push_back({"store-buffer only", base});

        op::CoreProfile ll = base;
        ll.name = "+load-load";
        ll.loadLoadReorder = true;
        knobs.push_back({"+load-load", ll});

        op::CoreProfile ss = base;
        ss.name = "+store-store";
        ss.storeStoreReorder = true;
        knobs.push_back({"+store-store", ss});

        op::CoreProfile ls = base;
        ls.name = "+load-store";
        ls.loadStoreReorder = true;
        knobs.push_back({"+load-store", ls});

        op::CoreProfile nofwd = base;
        nofwd.name = "-forwarding";
        nofwd.forwarding = false;
        knobs.push_back({"-forwarding", nofwd});

        knobs.push_back({"max-relaxed", op::CoreProfile::maxRelaxed()});
    }

    const char *tests[] = {
        "SB+pos",                //!< needs store buffering
        "SB+dmb.sy+eret",        //!< store buffering across eret (Fig 4)
        "SB+dmb.sy+rfisvc-addr", //!< forwarding into handler (Fig 6)
        "MP+pos",                //!< needs store-store or load-load
        "MP+dmb.sy+svc",         //!< needs load-load (A73 only, s3.2.2)
        "LB+pos",                //!< needs load-store
        "2+2W+pos",              //!< needs store-store
    };

    std::printf("Ablation: reordering capability -> observable "
                "behaviours (exhaustive exploration)\n\n");
    harness::Table table;
    std::vector<std::string> header = {"test"};
    for (const Knob &knob : knobs)
        header.push_back(knob.name);
    table.header(header);

    for (const char *name : tests) {
        const LitmusTest &test = TestRegistry::instance().get(name);
        std::vector<std::string> row = {name};
        for (const Knob &knob : knobs) {
            op::ExploreResult result =
                op::explore(test, knob.profile, 400000);
            row.push_back(result.conditionReachable ? "obs" : "-");
        }
        table.row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n'obs' = the test's relaxed final state is reachable "
                "on that configuration.\n");
    return 0;
}
