/**
 * @file
 * Figure 12: MPviaSGI — message passing via an SGI with no further
 * synchronisation is broken: the SGI's generation and delivery can
 * outrun the program-order-earlier data write. Adding a DSB ST repairs
 * it (contrast test).
 */

#include "bench_common.hh"

int
main()
{
    rex::harness::FigureOptions options;
    options.variants = {rex::ModelParams::base()};
    return rex::bench::reproduce(
        "Figure 12: message passing via SGI",
        {"MPviaSGI", "MPviaSGI+dsb.st"}, options);
}
