/**
 * @file
 * In-process cluster fan-out benchmarks: a coordinator rexd fanning
 * /check shard plans over N peer rexd instances on ephemeral localhost
 * ports, all inside one process (so numbers measure dispatch, envelope
 * verification, and audit machinery — not network or extra silicon;
 * peers share this machine's cores, so fan-out "speedup" here is the
 * honest single-box lower bound).
 *
 *   BM_SingleNodeCheck      POST /check against one uncached daemon —
 *                           the no-cluster baseline round trip.
 *   BM_ClusterCheck/A       the same check through a coordinator with
 *                           three peers at --audit-rate A% (0, 5, 20):
 *                           the audit column IS the integrity overhead
 *                           (docs/DISTRIBUTED.md, "Integrity & trust
 *                           model").
 *   BM_DistributedHammer/N  a fixed hammer campaign run locally (N=0)
 *                           vs fanned over N=3 peers through the
 *                           rex-shard-v1 envelope path.
 *
 * Committed snapshots: BENCH_PR10.json (scripts/compare_bench.py).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "base/strings.hh"
#include "engine/batch.hh"
#include "gen/hammer.hh"
#include "litmus/registry.hh"
#include "server/client.hh"
#include "server/hammerdist.hh"
#include "server/peer.hh"
#include "server/server.hh"

namespace {

using namespace rex;

/** Uncached, small-pool engine: every request exercises the wire. */
engine::EngineConfig
benchEngineConfig()
{
    engine::EngineConfig config;
    config.jobs = 2;
    config.cacheEnabled = false;
    return config;
}

/** N peer daemons plus a coordinator whose --peers lists them all. */
struct Cluster {
    Cluster(unsigned peerCount, double auditRate)
    {
        for (unsigned i = 0; i < peerCount; ++i) {
            peerEngines.push_back(std::make_unique<engine::Engine>(
                benchEngineConfig()));
            server::ServerConfig config;
            config.threads = 2;
            peers.push_back(std::make_unique<server::RexServer>(
                *peerEngines.back(), config));
            peers.back()->start();
        }
        coordEngine =
            std::make_unique<engine::Engine>(benchEngineConfig());
        server::ServerConfig config;
        config.threads = 2;
        for (auto &peer : peers)
            config.peers.endpoints.push_back(
                format("127.0.0.1:%u", peer->port()));
        config.peers.minShards = 1;
        config.peers.shardsPerTask = 4;
        config.peers.auditRate = auditRate;
        coord = std::make_unique<server::RexServer>(*coordEngine,
                                                    config);
        coord->start();
    }

    ~Cluster()
    {
        coord->requestDrain();
        coord->join();
        for (auto &peer : peers) {
            peer->requestDrain();
            peer->join();
        }
    }

    std::vector<std::unique_ptr<engine::Engine>> peerEngines;
    std::vector<std::unique_ptr<server::RexServer>> peers;
    std::unique_ptr<engine::Engine> coordEngine;
    std::unique_ptr<server::RexServer> coord;
};

void
BM_SingleNodeCheck(benchmark::State &state)
{
    Cluster cluster(0, 0.0);
    server::Client client("127.0.0.1", cluster.coord->port());
    const std::string &text =
        TestRegistry::instance().sourceText("IRIW+addrs");
    for (auto _ : state) {
        server::ClientResponse r = client.check(text, {"base"});
        if (r.status != 200) {
            state.SkipWithError("single-node check did not answer 200");
            return;
        }
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleNodeCheck)->Unit(benchmark::kMillisecond);

/** Arg = audit rate in percent (0, 5, 20). */
void
BM_ClusterCheck(benchmark::State &state)
{
    Cluster cluster(3, static_cast<double>(state.range(0)) / 100.0);
    server::Client client("127.0.0.1", cluster.coord->port());
    const std::string &text =
        TestRegistry::instance().sourceText("IRIW+addrs");
    for (auto _ : state) {
        server::ClientResponse r = client.check(text, {"base"});
        if (r.status != 200) {
            state.SkipWithError("cluster check did not answer 200");
            return;
        }
        benchmark::DoNotOptimize(r.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterCheck)
    ->Arg(0)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

/** Arg = peer count; 0 runs the campaign in-process (the baseline). */
void
BM_DistributedHammer(benchmark::State &state)
{
    const unsigned peerCount = static_cast<unsigned>(state.range(0));
    gen::HammerConfig config;
    config.seedBegin = 0;
    config.seedEnd = 64;
    config.chunk = 8;
    config.budget.maxCandidates = 2000;
    gen::Hammer hammer(config);

    if (peerCount == 0) {
        engine::Engine local(benchEngineConfig());
        for (auto _ : state) {
            gen::CampaignSummary summary = hammer.run(local);
            benchmark::DoNotOptimize(&summary);
        }
    } else {
        Cluster cluster(peerCount, 0.0);
        server::Metrics metrics;
        server::PeerConfig peerConfig;
        for (auto &peer : cluster.peers)
            peerConfig.endpoints.push_back(
                format("127.0.0.1:%u", peer->port()));
        server::PeerPool pool(peerConfig, &metrics);
        engine::Engine coordinator(benchEngineConfig());
        for (auto _ : state) {
            gen::CampaignSummary summary =
                server::runDistributedHammer(hammer, coordinator, pool);
            benchmark::DoNotOptimize(&summary);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistributedHammer)
    ->Arg(0)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
