/**
 * @file
 * Figure 11: MPviaSGIEIOmode1sequence — synchronisation via SGI with the
 * full acknowledge / priority-drop / deactivate sequence appropriate for
 * EOImode=1. Forbidden: the DSB ST orders the data write before
 * GenerateInterrupt, which the interrupt witness orders before the
 * delivery, which orders the handler's read.
 */

#include "bench_common.hh"

int
main()
{
    rex::harness::FigureOptions options;
    options.variants = {rex::ModelParams::base()};
    return rex::bench::reproduce(
        "Figure 11: SGI with the full EOImode=1 sequence",
        {"MPviaSGIEIOmode1sequence"}, options);
}
