/**
 * @file
 * Figure 4: SB+dmb.sy+eret — reads and writes execute out-of-order
 * across exception entry+exit. Regenerates the hw-refs column (via the
 * operational simulator's device profiles) and the param-refs column
 * (ExS A / SEA_R A / SEA_W F / SEA_R+W F).
 */

#include "bench_common.hh"

int
main()
{
    return rex::bench::reproduce(
        "Figure 4: out-of-order execution across exception boundaries",
        {"SB+dmb.sy+eret"});
}
